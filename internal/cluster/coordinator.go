package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/online"
)

// Defaults for Config zero values.
const (
	// DefaultChunkRows is the fan-out chunk size. Large enough that
	// per-chunk costs (frame header, CRC, ack, scheduling) amortize to
	// a few ns/row, small enough that acks stay prompt.
	DefaultChunkRows = 512
	// DefaultPullEvery is the pull-merge-republish cadence. It also
	// bounds data loss on worker death: rows a worker folded after its
	// last pull die with it.
	DefaultPullEvery = 2 * time.Second
	// DefaultPullRetries is how many times a shard pull is retried
	// (with backoff) before the merge degrades to the retained shard.
	DefaultPullRetries = 3
	// DefaultBackoff is the initial retry backoff, doubling per attempt.
	DefaultBackoff = 100 * time.Millisecond
	// DefaultHealthEvery is the membership probe interval.
	DefaultHealthEvery = time.Second
	// DefaultRepublishRows triggers an early pull-merge-republish once
	// this many acked rows accumulate for one model.
	DefaultRepublishRows = 65536
)

// ErrNoWorkers means no healthy worker remains to take rows.
var ErrNoWorkers = errors.New("cluster: no healthy workers")

// ErrUnknownModel means a merge was requested for a model no ingest
// session has ever registered with this coordinator.
var ErrUnknownModel = errors.New("cluster: unknown model")

// Config tunes a Coordinator.
type Config struct {
	// Workers is the initial member list (base URLs, e.g.
	// "http://10.0.0.7:9301"). More can join at runtime.
	Workers []string
	// LocalWorkers are in-process worker nodes, dispatched by direct
	// call instead of HTTP: chunks skip framing, checksums, and the
	// loopback hop entirely and fold synchronously while still
	// cache-hot. They join the same hash ring as Workers (and can mix
	// with them), which is what rrbench's cluster experiment uses to
	// measure the sharded pipeline itself rather than kernel socket
	// throughput. Shard pulls go through the same checksummed Snapshot
	// document remote pulls use, so merge-side verification is
	// identical.
	LocalWorkers []*Worker
	// Manager runs the merge-side gate and publish; required.
	Manager *online.Manager
	// ChunkRows, PullEvery, PullRetries, Backoff, HealthEvery,
	// RepublishRows: see the defaults above.
	ChunkRows     int
	PullEvery     time.Duration
	PullRetries   int
	Backoff       time.Duration
	HealthEvery   time.Duration
	RepublishRows int
	// Metrics receives the rr_cluster_* families; nil selects
	// obs.Default().
	Metrics *obs.Registry
	// Tracer roots cluster.merge spans for background merges; nil
	// leaves them untraced.
	Tracer *trace.Tracer
	// Logger receives membership and merge lines; nil is silent.
	Logger *slog.Logger
	// Client performs worker HTTP; nil builds one with sane keep-alive
	// settings.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.ChunkRows <= 0 || c.ChunkRows > MaxChunkRows {
		c.ChunkRows = DefaultChunkRows
	}
	if c.PullEvery <= 0 {
		c.PullEvery = DefaultPullEvery
	}
	if c.PullRetries <= 0 {
		c.PullRetries = DefaultPullRetries
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = DefaultHealthEvery
	}
	if c.RepublishRows <= 0 {
		c.RepublishRows = DefaultRepublishRows
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 16
		c.Client = &http.Client{Transport: tr}
	}
	return c
}

// member is one worker as the coordinator sees it. Fields are guarded
// by the coordinator's mu. local is set for in-process workers, whose
// transport is a direct call.
type member struct {
	url      string
	local    *Worker
	healthy  bool
	instance string // last instance reported by /healthz
	lastErr  string
}

// modelState is the coordinator's per-model bookkeeping.
type modelState struct {
	width    int
	decay    float64
	pending  int   // acked rows since the last merge-republish
	accepted int64 // lifetime acked rows, reported on public ack lines
}

// Coordinator fans public ingest out to workers and owns the only
// merge + gate + publish path, so the cluster behaves like one fast
// node: exactly one model version sequence, one GE gate, one alert
// stream.
type Coordinator struct {
	cfg    Config
	met    *clusterMetrics
	client *http.Client
	log    *slog.Logger

	mu       sync.Mutex
	members  []*member
	ring     *hashRing
	tainted  map[string]bool                         // instances barred until process restart
	retained map[string]map[string]*core.StreamMiner // model -> instance -> last pulled shard
	models   map[string]*modelState
	degraded bool // last merge cycle substituted a retained shard
	started  bool
	closed   bool

	wake chan string
	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a Coordinator over the given workers. Call Start to begin
// health probing and the merge loop.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Manager == nil {
		return nil, errors.New("cluster: coordinator requires an online manager")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		met:      newClusterMetrics(cfg.Metrics),
		client:   cfg.Client,
		log:      cfg.Logger,
		tainted:  make(map[string]bool),
		retained: make(map[string]map[string]*core.StreamMiner),
		models:   make(map[string]*modelState),
		wake:     make(chan string, 64),
		done:     make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, u := range cfg.Workers {
		u = normalizeWorkerURL(u)
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		c.members = append(c.members, &member{url: u})
	}
	for _, w := range cfg.LocalWorkers {
		if w == nil {
			continue
		}
		c.members = append(c.members, &member{url: "inproc://" + w.Instance(), local: w})
	}
	if len(c.members) == 0 {
		return nil, errors.New("cluster: coordinator requires at least one worker (URL or local)")
	}
	c.ring = buildRing(nil)
	return c, nil
}

// normalizeWorkerURL validates and strips a trailing slash.
func normalizeWorkerURL(u string) string {
	p, err := url.Parse(u)
	if err != nil || p.Scheme == "" || p.Host == "" {
		return ""
	}
	p.Path, p.RawQuery, p.Fragment = "", "", ""
	return p.String()
}

// Start probes every member once (so the first session has a ring) and
// launches the health and merge loops.
func (c *Coordinator) Start() {
	c.mu.Lock()
	if c.started || c.closed {
		c.mu.Unlock()
		return
	}
	c.started = true
	members := append([]*member(nil), c.members...)
	c.mu.Unlock()

	for _, m := range members {
		c.probe(m)
	}
	c.rebuildRing()

	c.wg.Add(2)
	go c.healthLoop()
	go c.mergeLoop()
}

// Close stops the loops and runs a final merge-republish for every
// model with pending rows, so acked data is published before shutdown.
func (c *Coordinator) Close(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	started := c.started
	c.mu.Unlock()
	close(c.done)
	if started {
		c.wg.Wait()
	}
	var firstErr error
	for _, name := range c.pendingModels(false) {
		if err := c.mergeAndRepublish(ctx, name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Join adds (or re-probes) a worker URL at runtime: the rejoin path
// after a crash. A restarted process reports a fresh instance, clearing
// any taint that barred its predecessor.
func (c *Coordinator) Join(rawURL string) error {
	u := normalizeWorkerURL(rawURL)
	if u == "" {
		return fmt.Errorf("cluster: bad worker url %q", rawURL)
	}
	c.mu.Lock()
	var m *member
	for _, existing := range c.members {
		if existing.url == u {
			m = existing
			break
		}
	}
	if m == nil {
		m = &member{url: u}
		c.members = append(c.members, m)
	}
	c.mu.Unlock()
	c.probe(m)
	c.rebuildRing()
	c.mu.Lock()
	healthy := m.healthy
	lastErr := m.lastErr
	c.mu.Unlock()
	if !healthy {
		return fmt.Errorf("cluster: worker %s failed join probe: %s", u, lastErr)
	}
	return nil
}

// probe refreshes one member's health and instance. A member whose
// instance is tainted (it lost a fan-out connection while chunks were
// outstanding, and those chunks were resharded elsewhere) stays dead
// until the process restarts under a new instance — readmitting it
// would double-count the resharded rows on merge.
func (c *Coordinator) probe(m *member) {
	if m.local != nil {
		c.mu.Lock()
		m.instance = m.local.Instance()
		if c.tainted[m.instance] {
			m.healthy = false
			m.lastErr = "instance tainted by a failed fan-out"
		} else {
			m.healthy = true
			m.lastErr = ""
		}
		c.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/healthz", nil)
	if err != nil {
		c.setHealth(m, false, "", err.Error())
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.setHealth(m, false, "", err.Error())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.setHealth(m, false, "", fmt.Sprintf("healthz status %d", resp.StatusCode))
		return
	}
	var body struct {
		Instance string `json:"instance"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err != nil {
		c.setHealth(m, false, "", fmt.Sprintf("healthz body: %v", err))
		return
	}
	c.mu.Lock()
	if c.tainted[body.Instance] {
		m.healthy = false
		m.instance = body.Instance
		m.lastErr = "instance tainted by a failed fan-out; restart the worker to rejoin"
		c.mu.Unlock()
		return
	}
	m.healthy = true
	m.instance = body.Instance
	m.lastErr = ""
	c.mu.Unlock()
}

// setHealth records a probe outcome.
func (c *Coordinator) setHealth(m *member, healthy bool, instance, errMsg string) {
	c.mu.Lock()
	m.healthy = healthy
	if instance != "" {
		m.instance = instance
	}
	m.lastErr = errMsg
	c.mu.Unlock()
}

// markFailed takes a member out of rotation after a fan-out error.
// taint bars its instance permanently when unacked chunks were
// resharded away from it (see probe).
func (c *Coordinator) markFailed(m *member, err error, taint bool) {
	c.mu.Lock()
	wasHealthy := m.healthy
	m.healthy = false
	if err != nil {
		m.lastErr = err.Error()
	}
	if taint && m.instance != "" {
		c.tainted[m.instance] = true
	}
	c.mu.Unlock()
	if wasHealthy {
		c.log.Warn("cluster worker failed", "worker", m.url, "err", err, "tainted", taint)
		c.rebuildRing()
	}
}

// rebuildRing recomputes the consistent-hash ring over the currently
// healthy members.
func (c *Coordinator) rebuildRing() {
	c.mu.Lock()
	healthy := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		if m.healthy {
			healthy = append(healthy, m)
		}
	}
	c.ring = buildRing(healthy)
	c.met.membersHealthy.Set(float64(len(healthy)))
	c.met.membersTotal.Set(float64(len(c.members)))
	c.mu.Unlock()
	c.met.reshardings.Inc()
}

// pick returns the ring owner for a chunk key, skipping members in the
// not set (used when resharding away from a failure).
func (c *Coordinator) pick(key uint64, not map[*member]bool) *member {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.ring.points) == 0 {
		return nil
	}
	m := c.ring.lookup(key)
	if m == nil || !not[m] {
		return m
	}
	// Walk the healthy list for any survivor not excluded.
	for _, cand := range c.members {
		if cand.healthy && !not[cand] {
			return cand
		}
	}
	return nil
}

// healthLoop probes membership on the configured cadence, resharding on
// every transition.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.mu.Lock()
			members := append([]*member(nil), c.members...)
			before := c.healthFingerprint()
			c.mu.Unlock()
			for _, m := range members {
				c.probe(m)
			}
			c.mu.Lock()
			after := c.healthFingerprint()
			c.mu.Unlock()
			if before != after {
				c.log.Info("cluster membership changed", "healthy", after)
				c.rebuildRing()
			}
		}
	}
}

// healthFingerprint summarizes membership for change detection; callers
// hold mu.
func (c *Coordinator) healthFingerprint() string {
	parts := make([]string, 0, len(c.members))
	for _, m := range c.members {
		if m.healthy {
			parts = append(parts, m.url+"="+m.instance)
		}
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

// pendingModels lists models with rows awaiting a merge; when all is
// true, every registered model.
func (c *Coordinator) pendingModels(onlyDirty bool) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.models))
	for name, ms := range c.models {
		if !onlyDirty || ms.pending > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// mergeLoop periodically (and on row-count wakes) pulls every worker's
// shard, merges, and republishes through the online manager.
func (c *Coordinator) mergeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.PullEvery)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case name := <-c.wake:
			c.mergeIfDirty(context.Background(), name)
		case <-t.C:
			for _, name := range c.pendingModels(true) {
				c.mergeIfDirty(context.Background(), name)
			}
		}
	}
}

// mergeIfDirty absorbs duplicate wakes.
func (c *Coordinator) mergeIfDirty(ctx context.Context, name string) {
	c.mu.Lock()
	ms := c.models[name]
	dirty := ms != nil && ms.pending > 0
	c.mu.Unlock()
	if !dirty {
		return
	}
	if err := c.mergeAndRepublish(ctx, name); err != nil && !online.IsTooFewRows(err) {
		c.log.Warn("cluster merge-republish failed", "model", name, "err", err)
	}
}

// pullShard fetches one worker's shard with retry + backoff. found is
// false when the worker has folded nothing for the model (HTTP 404).
func (c *Coordinator) pullShard(ctx context.Context, m *member, name string) (sm *core.StreamMiner, instance string, found bool, err error) {
	ctx, sp := trace.Start(ctx, "cluster.shard_pull")
	start := time.Now()
	defer func() {
		c.met.pullSeconds.Observe(time.Since(start).Seconds())
		if sp != nil {
			sp.SetAttr("worker", m.url)
			sp.SetAttr("found", found)
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}
	}()
	backoff := c.cfg.Backoff
	for attempt := 0; attempt < c.cfg.PullRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, "", false, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		sm, instance, found, err = c.pullShardOnce(ctx, m, name)
		if err == nil {
			if found {
				c.met.pulls.With("ok").Inc()
			} else {
				c.met.pulls.With("empty").Inc()
			}
			return sm, instance, found, nil
		}
	}
	c.met.pulls.With("error").Inc()
	return nil, "", false, err
}

func (c *Coordinator) pullShardOnce(ctx context.Context, m *member, name string) (*core.StreamMiner, string, bool, error) {
	if m.local != nil {
		body, ok, err := m.local.Snapshot(name)
		if err != nil || !ok {
			return nil, "", false, err
		}
		doc, sm, err := DecodeShard(body)
		if err != nil {
			return nil, "", false, err
		}
		return sm, doc.Instance, true, nil
	}
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		m.url+"/v1/cluster/shard/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, "", false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, "", false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", false, fmt.Errorf("cluster: shard pull from %s: status %d", m.url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, "", false, err
	}
	doc, sm, err := DecodeShard(body)
	if err != nil {
		return nil, "", false, err
	}
	return sm, doc.Instance, true, nil
}

// mergeAndRepublish is the cluster's single publish path: pull the live
// shard of every healthy member (falling back to the retained snapshot
// of any instance it cannot reach — degraded mode), merge them all with
// StreamMiner.Merge, and hand the union to the online manager for the
// eigensolve + GE gate + store publish.
func (c *Coordinator) mergeAndRepublish(ctx context.Context, name string) error {
	ctx, sp := trace.Start(ctx, "cluster.merge")
	if sp == nil && c.cfg.Tracer != nil {
		ctx, sp = c.cfg.Tracer.StartRoot(ctx, "cluster.merge", trace.SpanContext{})
	}
	start := time.Now()
	degraded, err := c.mergeAndRepublishInner(ctx, name)
	c.met.mergeSeconds.Observe(time.Since(start).Seconds())
	switch {
	case err != nil && !online.IsTooFewRows(err):
		c.met.merges.With("error").Inc()
	case degraded:
		c.met.merges.With("degraded").Inc()
		c.met.degraded.Inc()
	default:
		c.met.merges.With("ok").Inc()
	}
	c.mu.Lock()
	c.degraded = degraded
	c.mu.Unlock()
	if sp != nil {
		sp.SetAttr("model", name)
		sp.SetAttr("degraded", degraded)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return err
}

func (c *Coordinator) mergeAndRepublishInner(ctx context.Context, name string) (degraded bool, err error) {
	c.mu.Lock()
	ms := c.models[name]
	if ms == nil {
		c.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	width, decay := ms.width, ms.decay
	ms.pending = 0
	healthy := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		if m.healthy {
			healthy = append(healthy, m)
		}
	}
	c.mu.Unlock()

	merged, err := core.NewStreamMiner(width, decay)
	if err != nil {
		return false, err
	}
	used := make(map[string]bool) // instances already merged live
	for _, m := range healthy {
		sm, instance, found, perr := c.pullShard(ctx, m, name)
		if perr != nil {
			// Unreachable: its retained snapshot (if any) stands in below.
			degraded = true
			c.log.Warn("cluster shard pull failed, degrading to retained shard",
				"model", name, "worker", m.url, "err", perr)
			continue
		}
		if !found {
			continue
		}
		if merr := merged.Merge(sm); merr != nil {
			return degraded, fmt.Errorf("cluster: merging shard from %s: %w", m.url, merr)
		}
		used[instance] = true
		c.retain(name, instance, sm)
	}
	// Retained shards of instances not merged live: dead workers, and
	// live ones whose pull just failed. Their last snapshot keeps every
	// row acked before it was taken; rows folded after it are lost with
	// the worker (bounded by PullEvery).
	c.mu.Lock()
	var stale []*core.StreamMiner
	retainedCount := 0
	for _, byInstance := range c.retained {
		retainedCount += len(byInstance)
	}
	for instance, sm := range c.retained[name] {
		if !used[instance] {
			stale = append(stale, sm)
		}
	}
	c.met.retained.Set(float64(retainedCount))
	c.mu.Unlock()
	for _, sm := range stale {
		degraded = true
		if merr := merged.Merge(sm); merr != nil {
			return degraded, fmt.Errorf("cluster: merging retained shard: %w", merr)
		}
	}

	res, err := c.cfg.Manager.RepublishFrom(ctx, name, merged)
	if err != nil {
		return degraded, err
	}
	c.log.Info("cluster republished merged model",
		"model", name, "rows", merged.Count(), "shards_live", len(used),
		"shards_retained", len(stale), "degraded", degraded,
		"promoted", res.Promoted, "version", res.Version, "reason", res.Reason)
	return degraded, nil
}

// retain stores the latest pulled snapshot for an instance; it answers
// merges after that instance dies.
func (c *Coordinator) retain(name, instance string, sm *core.StreamMiner) {
	c.mu.Lock()
	defer c.mu.Unlock()
	byInstance := c.retained[name]
	if byInstance == nil {
		byInstance = make(map[string]*core.StreamMiner)
		c.retained[name] = byInstance
	}
	byInstance[instance] = sm
}

// MergeNow runs one synchronous pull-merge-republish cycle for a model,
// regardless of pending row counts — the deterministic trigger tests and
// benchmarks need, and the force-republish hook for operators.
func (c *Coordinator) MergeNow(ctx context.Context, name string) error {
	return c.mergeAndRepublish(ctx, name)
}

// Status is the /readyz and /v1/cluster/status view of the cluster.
type Status struct {
	Members  []MemberStatus `json:"members"`
	Healthy  int            `json:"healthy"`
	Degraded bool           `json:"degraded"`
	Retained int            `json:"retained_shards"`
}

// MemberStatus is one worker's row in Status.
type MemberStatus struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Instance string `json:"instance,omitempty"`
	Tainted  bool   `json:"tainted,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
}

// Status snapshots membership and degradation state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{Degraded: c.degraded}
	for _, byInstance := range c.retained {
		s.Retained += len(byInstance)
	}
	for _, m := range c.members {
		ms := MemberStatus{
			URL: m.url, Healthy: m.healthy, Instance: m.instance,
			Tainted: c.tainted[m.instance], LastErr: m.lastErr,
		}
		if m.healthy {
			s.Healthy++
		}
		s.Members = append(s.Members, ms)
	}
	return s
}
