// Package matrix provides dense matrix and vector algebra for the Ratio
// Rules mining pipeline.
//
// The package is deliberately small and allocation-conscious: matrices are
// stored in row-major order in a single backing slice, and every operation
// documents whether it allocates. It implements exactly what the eigensystem
// analysis of Korn et al. (VLDB 1998) needs — multiplication, transposition,
// row/column selection, and norms — with dimension checks that return typed
// errors on the fallible constructors and panic (with a clear message) on
// programmer errors in hot-path accessors, following the convention of the
// standard library's slice indexing.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimensionMismatch is returned (or wrapped) when the shapes of two
// operands are incompatible.
var ErrDimensionMismatch = errors.New("matrix: dimension mismatch")

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty 0×0 matrix and is safe to use with Dims.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix.
// It panics if rows or cols is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: NewDense with negative dimension %d×%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData returns a rows×cols matrix that adopts (does not copy) the
// provided backing slice, which must have length rows*cols.
func NewDenseData(rows, cols int, data []float64) (*Dense, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: negative dimension %d×%d: %w", rows, cols, ErrDimensionMismatch)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("matrix: data length %d does not match %d×%d: %w",
			len(data), rows, cols, ErrDimensionMismatch)
	}
	return &Dense{rows: rows, cols: cols, data: data}, nil
}

// FromRows builds a matrix by copying the given rows, which must all have
// equal length. An empty input yields a 0×0 matrix.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has length %d, want %d: %w",
				i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// MustFromRows is FromRows that panics on ragged input. It is intended for
// tests and literal fixtures.
func MustFromRows(rows [][]float64) *Dense {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diagonal returns a square matrix with d on the main diagonal.
func Diagonal(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Dims reports the number of rows and columns.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows reports the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the value at row i, column j. It panics on out-of-range
// indices, mirroring slice indexing semantics.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the value at row i, column j. It panics on out-of-range
// indices.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// RawRow returns the i-th row as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %d×%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RawData returns the row-major backing slice aliasing the matrix
// storage. Mutating the returned slice mutates the matrix; it exists
// for kernels that update many rows in one pass (the stream miner's
// batched covariance fold).
func (m *Dense) RawData() []float64 { return m.data }

// Row returns a copy of the i-th row.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.RawRow(i))
	return out
}

// SetRow copies v into the i-th row. It panics if len(v) != Cols().
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.RawRow(i), v)
}

// Col returns a copy of the j-th column.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: column %d out of range for %d×%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a newly allocated matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Mul returns the matrix product a·b. It returns ErrDimensionMismatch if the
// inner dimensions disagree.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("matrix: Mul %d×%d by %d×%d: %w",
			a.rows, a.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out := NewDense(a.rows, b.cols)
	// ikj loop order: streams through b row-wise for cache friendliness.
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MustMul is Mul that panics on dimension mismatch; for use when shapes are
// known correct by construction.
func MustMul(a, b *Dense) *Dense {
	out, err := Mul(a, b)
	if err != nil {
		panic(err)
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func MulVec(m *Dense, x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("matrix: MulVec %d×%d by vector %d: %w",
			m.rows, m.cols, len(x), ErrDimensionMismatch)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("matrix: Add %d×%d and %d×%d: %w",
			a.rows, a.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out := NewDense(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns a−b.
func Sub(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("matrix: Sub %d×%d and %d×%d: %w",
			a.rows, a.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out := NewDense(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func Scale(s float64, m *Dense) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// SelectRows returns a new matrix consisting of the given rows, in order.
// Duplicate indices are allowed.
func (m *Dense) SelectRows(idx []int) *Dense {
	out := NewDense(len(idx), m.cols)
	for r, i := range idx {
		copy(out.RawRow(r), m.RawRow(i))
	}
	return out
}

// SelectCols returns a new matrix consisting of the given columns, in order.
func (m *Dense) SelectCols(idx []int) *Dense {
	out := NewDense(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.RawRow(i)
		dst := out.RawRow(i)
		for c, j := range idx {
			dst[c] = src[j]
		}
	}
	return out
}

// ColMeans returns the per-column averages. For a 0-row matrix it returns
// all zeros.
func (m *Dense) ColMeans() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.rows)
	}
	return means
}

// CenterColumns returns a copy of m with the column means subtracted from
// every cell, together with the means that were removed. This is the
// "zero-mean" matrix Xc of the paper.
func (m *Dense) CenterColumns() (centered *Dense, means []float64) {
	means = m.ColMeans()
	centered = m.Clone()
	for i := 0; i < centered.rows; i++ {
		row := centered.RawRow(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return centered, means
}

// FrobeniusNorm returns the square root of the sum of squares of all cells.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute cell value, or 0 for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// EqualApprox reports whether a and b have the same shape and every pair of
// cells differs by at most tol.
func EqualApprox(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix with one row per line, for debugging and small
// fixture output. Large matrices are elided after 12 rows.
func (m *Dense) String() string {
	const maxRows = 12
	var b strings.Builder
	fmt.Fprintf(&b, "%d×%d\n", m.rows, m.cols)
	n := m.rows
	if n > maxRows {
		n = maxRows
	}
	for i := 0; i < n; i++ {
		row := m.RawRow(i)
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", v)
		}
		b.WriteByte('\n')
	}
	if m.rows > maxRows {
		fmt.Fprintf(&b, "... (%d more rows)\n", m.rows-maxRows)
	}
	return b.String()
}
