package matrix

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y. It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: Dot of vectors with lengths %d and %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow by
// scaling with the largest magnitude component.
func Norm2(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		r := v / mx
		s += r * r
	}
	return mx * math.Sqrt(s)
}

// AxpyInto computes dst = a·x + y element-wise. All slices must share a
// length; dst may alias x or y.
func AxpyInto(dst []float64, a float64, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic(fmt.Sprintf("matrix: AxpyInto lengths %d, %d, %d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
}

// ScaleVec returns a·x as a new slice.
func ScaleVec(a float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = a * v
	}
	return out
}

// AddVec returns x+y as a new slice. It panics if the lengths differ.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: AddVec of vectors with lengths %d and %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i := range out {
		out[i] = x[i] + y[i]
	}
	return out
}

// SubVec returns x−y as a new slice. It panics if the lengths differ.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: SubVec of vectors with lengths %d and %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i := range out {
		out[i] = x[i] - y[i]
	}
	return out
}

// Normalize scales x in place to unit Euclidean norm and returns the
// original norm. A zero vector is left untouched and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}

// EqualApproxVec reports whether x and y have the same length and every
// component differs by at most tol.
func EqualApproxVec(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}
