package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths must panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 4}, 5},
		{[]float64{0, 0, 0}, 0},
		{nil, 0},
		{[]float64{-2}, 2},
	}
	for _, tc := range tests {
		if got := Norm2(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Norm2(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNorm2OverflowGuard(t *testing.T) {
	huge := math.MaxFloat64 / 2
	got := Norm2([]float64{huge, huge})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	want := huge * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestAxpyInto(t *testing.T) {
	dst := make([]float64, 3)
	AxpyInto(dst, 2, []float64{1, 2, 3}, []float64{10, 10, 10})
	if !EqualApproxVec(dst, []float64{12, 14, 16}, 0) {
		t.Errorf("AxpyInto = %v", dst)
	}
	// Aliasing dst == y must work.
	y := []float64{1, 1}
	AxpyInto(y, 1, []float64{1, 2}, y)
	if !EqualApproxVec(y, []float64{2, 3}, 0) {
		t.Errorf("aliased AxpyInto = %v", y)
	}
	defer func() {
		if recover() == nil {
			t.Error("AxpyInto with mismatched lengths must panic")
		}
	}()
	AxpyInto(dst, 1, []float64{1}, []float64{1})
}

func TestVecArithmetic(t *testing.T) {
	if got := ScaleVec(3, []float64{1, -2}); !EqualApproxVec(got, []float64{3, -6}, 0) {
		t.Errorf("ScaleVec = %v", got)
	}
	if got := AddVec([]float64{1, 2}, []float64{3, 4}); !EqualApproxVec(got, []float64{4, 6}, 0) {
		t.Errorf("AddVec = %v", got)
	}
	if got := SubVec([]float64{1, 2}, []float64{3, 4}); !EqualApproxVec(got, []float64{-2, -2}, 0) {
		t.Errorf("SubVec = %v", got)
	}
}

func TestVecArithmeticPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { AddVec([]float64{1}, []float64{1, 2}) },
		func() { SubVec([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for mismatched lengths")
				}
			}()
			fn()
		}()
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if math.Abs(n-5) > 1e-12 {
		t.Errorf("Normalize returned %v, want 5", n)
	}
	if math.Abs(Norm2(v)-1) > 1e-12 {
		t.Errorf("normalized norm = %v, want 1", Norm2(v))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Error("Normalize of zero vector must return 0")
	}
	if !EqualApproxVec(z, []float64{0, 0}, 0) {
		t.Error("Normalize must not modify a zero vector")
	}
}

func TestEqualApproxVec(t *testing.T) {
	if !EqualApproxVec([]float64{1, 2}, []float64{1.0001, 2}, 1e-3) {
		t.Error("vectors within tol must be equal")
	}
	if EqualApproxVec([]float64{1}, []float64{1, 2}, 1) {
		t.Error("different lengths must not be equal")
	}
	if EqualApproxVec([]float64{1}, []float64{2}, 0.5) {
		t.Error("vectors outside tol must not be equal")
	}
}

// Property: Cauchy–Schwarz |x·y| <= |x||y|.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Norm2.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return Norm2(AddVec(x, y)) <= Norm2(x)+Norm2(y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
