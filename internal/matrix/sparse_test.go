package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparseVec(t *testing.T) {
	s, err := NewSparseVec(5, []int{1, 3}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 2 || s.Len != 5 {
		t.Errorf("NNZ/Len = %d/%d", s.NNZ(), s.Len)
	}
	if s.At(1) != 2 || s.At(3) != 4 || s.At(0) != 0 || s.At(4) != 0 {
		t.Error("At wrong")
	}
}

func TestNewSparseVecValidation(t *testing.T) {
	cases := []struct {
		name string
		len  int
		idx  []int
		val  []float64
	}{
		{"negative length", -1, nil, nil},
		{"ragged", 5, []int{1}, []float64{1, 2}},
		{"out of range", 5, []int{5}, []float64{1}},
		{"negative index", 5, []int{-1}, []float64{1}},
		{"unsorted", 5, []int{3, 1}, []float64{1, 2}},
		{"duplicate", 5, []int{2, 2}, []float64{1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewSparseVec(tc.len, tc.idx, tc.val); !errors.Is(err, ErrDimensionMismatch) {
				t.Errorf("err = %v, want ErrDimensionMismatch", err)
			}
		})
	}
}

func TestSparsifyRoundTrip(t *testing.T) {
	row := []float64{0, 1.5, 0, -2, 0.0001}
	s := SparsifyRow(row, 0.001)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (eps filter)", s.NNZ())
	}
	dense := s.ToDense()
	want := []float64{0, 1.5, 0, -2, 0}
	if !EqualApproxVec(dense, want, 0) {
		t.Errorf("ToDense = %v, want %v", dense, want)
	}
}

func TestSparseAtPanics(t *testing.T) {
	s := SparsifyRow([]float64{1}, 0)
	defer func() {
		if recover() == nil {
			t.Error("At out of range must panic")
		}
	}()
	s.At(5)
}

func TestDotSparse(t *testing.T) {
	a := SparsifyRow([]float64{1, 0, 2, 0, 3}, 0)
	b := SparsifyRow([]float64{0, 5, 2, 0, 1}, 0)
	got, err := DotSparse(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 { // 2*2 + 3*1
		t.Errorf("DotSparse = %v, want 7", got)
	}
	if _, err := DotSparse(a, SparsifyRow([]float64{1}, 0)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

// Property: sparse dot agrees with the dense dot for random sparse rows.
func TestDotSparseAgreesWithDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		a := randomSparseRow(rng, n)
		b := randomSparseRow(rng, n)
		sparse, err := DotSparse(SparsifyRow(a, 0), SparsifyRow(b, 0))
		if err != nil {
			return false
		}
		return math.Abs(sparse-Dot(a, b)) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randomSparseRow(rng *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	for j := range row {
		if rng.Float64() < 0.3 {
			row[j] = rng.NormFloat64()
		}
	}
	return row
}
