package matrix

import (
	"fmt"
	"sort"
)

// SparseVec is a sparse row vector: the values at the (sorted, distinct)
// indices in Idx, zero elsewhere. Market-basket rows — the paper's
// motivating data — are naturally sparse: a customer touches a handful of
// the M products, so accumulating covariance from the nonzeros alone costs
// O(nnz²) instead of O(M²) per row.
type SparseVec struct {
	Len int
	Idx []int
	Val []float64
}

// NewSparseVec builds a sparse vector from parallel index/value slices,
// validating that indices are sorted, distinct and in range, and that the
// slices have equal length. The slices are adopted, not copied.
func NewSparseVec(length int, idx []int, val []float64) (SparseVec, error) {
	if length < 0 {
		return SparseVec{}, fmt.Errorf("matrix: sparse length %d: %w", length, ErrDimensionMismatch)
	}
	if len(idx) != len(val) {
		return SparseVec{}, fmt.Errorf("matrix: sparse with %d indices, %d values: %w",
			len(idx), len(val), ErrDimensionMismatch)
	}
	for i, j := range idx {
		if j < 0 || j >= length {
			return SparseVec{}, fmt.Errorf("matrix: sparse index %d out of range [0,%d): %w",
				j, length, ErrDimensionMismatch)
		}
		if i > 0 && idx[i-1] >= j {
			return SparseVec{}, fmt.Errorf("matrix: sparse indices not strictly increasing at %d: %w",
				i, ErrDimensionMismatch)
		}
	}
	return SparseVec{Len: length, Idx: idx, Val: val}, nil
}

// SparsifyRow converts a dense row to sparse form, dropping cells with
// |value| <= eps. The result copies; the input row may be reused.
func SparsifyRow(row []float64, eps float64) SparseVec {
	var idx []int
	var val []float64
	for j, v := range row {
		if v > eps || v < -eps {
			idx = append(idx, j)
			val = append(val, v)
		}
	}
	return SparseVec{Len: len(row), Idx: idx, Val: val}
}

// NNZ reports the number of stored nonzeros.
func (s SparseVec) NNZ() int { return len(s.Idx) }

// At returns the value at index j (0 when not stored).
func (s SparseVec) At(j int) float64 {
	if j < 0 || j >= s.Len {
		panic(fmt.Sprintf("matrix: sparse index %d out of range [0,%d)", j, s.Len))
	}
	p := sort.SearchInts(s.Idx, j)
	if p < len(s.Idx) && s.Idx[p] == j {
		return s.Val[p]
	}
	return 0
}

// ToDense materializes the vector.
func (s SparseVec) ToDense() []float64 {
	out := make([]float64, s.Len)
	for i, j := range s.Idx {
		out[j] = s.Val[i]
	}
	return out
}

// DotSparse returns the inner product of two sparse vectors of equal
// length.
func DotSparse(a, b SparseVec) (float64, error) {
	if a.Len != b.Len {
		return 0, fmt.Errorf("matrix: sparse dot of lengths %d and %d: %w",
			a.Len, b.Len, ErrDimensionMismatch)
	}
	var sum float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			sum += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return sum, nil
}
