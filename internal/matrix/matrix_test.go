package matrix

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims() = %d,%d, want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(-1, 2) did not panic")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseData(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m, err := NewDenseData(2, 3, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	// Adopts, not copies.
	d[5] = 60
	if got := m.At(1, 2); got != 60 {
		t.Errorf("after aliasing write, At(1,2) = %v, want 60", got)
	}
	if _, err := NewDenseData(2, 3, d[:5]); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("short data: err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := NewDenseData(-1, 3, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("negative dim: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %d×%d, want 3×2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsRagged(t *testing.T) {
	_, err := FromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("dims = %d×%d, want 0×0", m.Rows(), m.Cols())
	}
}

func TestIdentityAndDiagonal(t *testing.T) {
	id := Identity(3)
	d := Diagonal([]float64{1, 1, 1})
	if !EqualApprox(id, d, 0) {
		t.Error("Identity(3) != Diagonal(ones)")
	}
	if id.At(0, 1) != 0 || id.At(1, 1) != 1 {
		t.Error("identity has wrong entries")
	}
}

func TestAtSetPanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.RawRow(5) },
		func() { m.Col(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestRowColCopySemantics(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row must copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Error("Col must copy")
	}
	raw := m.RawRow(1)
	raw[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("RawRow must alias")
	}
}

func TestSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 {
		t.Errorf("At(1,2) = %v, want 9", m.At(1, 2))
	}
	defer func() {
		if recover() == nil {
			t.Error("SetRow with wrong length must panic")
		}
	}()
	m.SetRow(0, []float64{1})
}

func TestTranspose(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	want := MustFromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !EqualApprox(mt, want, 0) {
		t.Errorf("T() = %v, want %v", mt, want)
	}
	if !EqualApprox(mt.T(), m, 0) {
		t.Error("double transpose must round-trip")
	}
}

func TestMul(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{5, 6}, {7, 8}})
	got := MustMul(a, b)
	want := MustFromRows([][]float64{{19, 22}, {43, 50}})
	if !EqualApprox(got, want, 1e-12) {
		t.Errorf("a·b = %v, want %v", got, want)
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Mul(a, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	if got := MustMul(a, Identity(5)); !EqualApprox(got, a, 1e-12) {
		t.Error("a·I != a")
	}
	if got := MustMul(Identity(5), a); !EqualApprox(got, a, 1e-12) {
		t.Error("I·a != a")
	}
}

func TestMulVec(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got, err := MulVec(m, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1, -1}
	if !EqualApproxVec(got, want, 1e-12) {
		t.Errorf("MulVec = %v, want %v", got, want)
	}
	if _, err := MulVec(m, []float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{10, 20}, {30, 40}})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(sum, MustFromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Error("Add wrong")
	}
	diff, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(diff, MustFromRows([][]float64{{9, 18}, {27, 36}}), 0) {
		t.Error("Sub wrong")
	}
	if !EqualApprox(Scale(2, a), MustFromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Error("Scale wrong")
	}
	if _, err := Add(a, NewDense(1, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("Add shape check failed")
	}
	if _, err := Sub(a, NewDense(2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("Sub shape check failed")
	}
}

func TestSelectRowsCols(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := m.SelectRows([]int{2, 0})
	if !EqualApprox(r, MustFromRows([][]float64{{7, 8, 9}, {1, 2, 3}}), 0) {
		t.Errorf("SelectRows = %v", r)
	}
	c := m.SelectCols([]int{1})
	if !EqualApprox(c, MustFromRows([][]float64{{2}, {5}, {8}}), 0) {
		t.Errorf("SelectCols = %v", c)
	}
}

func TestColMeansAndCenter(t *testing.T) {
	m := MustFromRows([][]float64{{1, 10}, {3, 30}})
	means := m.ColMeans()
	if !EqualApproxVec(means, []float64{2, 20}, 1e-12) {
		t.Errorf("ColMeans = %v, want [2 20]", means)
	}
	centered, got := m.CenterColumns()
	if !EqualApproxVec(got, means, 0) {
		t.Error("CenterColumns means disagree with ColMeans")
	}
	if !EqualApproxVec(centered.ColMeans(), []float64{0, 0}, 1e-12) {
		t.Error("centered matrix must have zero column means")
	}
	// Original untouched.
	if m.At(0, 0) != 1 {
		t.Error("CenterColumns must not mutate the receiver")
	}
}

func TestColMeansEmpty(t *testing.T) {
	m := NewDense(0, 3)
	if got := m.ColMeans(); !EqualApproxVec(got, []float64{0, 0, 0}, 0) {
		t.Errorf("ColMeans of empty = %v", got)
	}
}

func TestNorms(t *testing.T) {
	m := MustFromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	s := MustFromRows([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	a := MustFromRows([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Error("non-square matrix cannot be symmetric")
	}
}

func TestString(t *testing.T) {
	s := MustFromRows([][]float64{{1, 2}}).String()
	if !strings.Contains(s, "1×2") {
		t.Errorf("String() = %q, want dims header", s)
	}
	big := NewDense(20, 1)
	if !strings.Contains(big.String(), "more rows") {
		t.Error("String() must elide large matrices")
	}
}

// Property: (A·B)ᵗ == Bᵗ·Aᵗ for random shapes.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		left := MustMul(a, b).T()
		right := MustMul(b.T(), a.T())
		return EqualApprox(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication is associative.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 4, 3)
		b := randomMatrix(rng, 3, 5)
		c := randomMatrix(rng, 5, 2)
		left := MustMul(MustMul(a, b), c)
		right := MustMul(a, MustMul(b, c))
		return EqualApprox(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		row := m.RawRow(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return m
}

func TestSelectRowsColsPanics(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	for _, fn := range []func(){
		func() { m.SelectRows([]int{5}) },
		func() { m.SelectCols([]int{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range selection")
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestMustMulPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMul with bad shapes must panic")
		}
	}()
	MustMul(NewDense(2, 3), NewDense(2, 3))
}

func TestMustFromRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFromRows with ragged rows must panic")
		}
	}()
	MustFromRows([][]float64{{1}, {1, 2}})
}
