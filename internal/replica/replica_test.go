package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/store"
)

// testRules mines a tiny 2-attribute rule set with slope controlling
// the b:a ratio, so distinct slopes yield byte-distinct models.
func testRules(t testing.TB, slope float64) *core.Rules {
	t.Helper()
	rows := make([][]float64, 20)
	for i := range rows {
		v := 1 + float64(i)*0.25
		rows[i] = []float64{v, slope * v}
	}
	x, err := matrix.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	miner, err := core.NewMiner(core.WithAttrNames([]string{"a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// startLeader serves a store's replication stream from an httptest
// server with a fast heartbeat.
func startLeader(t *testing.T, st *store.Store) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(&Handler{
		Store: st, Logger: quietLogger(), Heartbeat: 20 * time.Millisecond,
	})
	t.Cleanup(ts.Close)
	return ts
}

// startFollower runs a Follower against leaderURL until test cleanup.
func startFollower(t *testing.T, leaderURL string, st *store.Store) *Follower {
	t.Helper()
	f, err := New(Options{
		Leader:       leaderURL,
		Store:        st,
		Logger:       quietLogger(),
		MinBackoff:   10 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		StallTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = f.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("follower did not stop")
		}
	})
	return f
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWireRoundTrip(t *testing.T) {
	r := testRules(t, 2)
	leader := store.OpenMemory()
	if _, err := leader.Put("m", r); err != nil {
		t.Fatal(err)
	}
	events, err := leader.EventsSince(0)
	if err != nil {
		t.Fatal(err)
	}

	var buf []byte
	buf = AppendHeartbeat(buf, 7)
	if buf, err = AppendEvent(buf, events[0]); err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendSnapshot(buf, leader.SnapshotDoc()); err != nil {
		t.Fatal(err)
	}

	rd := bytes.NewReader(buf)
	hb, err := ReadFrame(rd)
	if err != nil || hb.Kind != KindHeartbeat || hb.Seq != 7 {
		t.Fatalf("heartbeat = %+v, %v", hb, err)
	}
	ev, err := ReadFrame(rd)
	if err != nil || ev.Kind != KindEvent || ev.Event.Seq != 1 || ev.Event.Op != "put" {
		t.Fatalf("event = %+v, %v", ev, err)
	}
	if !bytes.Equal(ev.Event.Rules, events[0].Rules) {
		t.Fatal("event rules bytes changed on the wire")
	}
	snap, err := ReadFrame(rd)
	if err != nil || snap.Kind != KindSnapshot || snap.Snapshot.Seq != 1 {
		t.Fatalf("snapshot = %+v, %v", snap, err)
	}
	if _, err := ReadFrame(rd); err != io.EOF {
		t.Fatalf("clean end err = %v, want io.EOF", err)
	}
}

func TestWireCorruption(t *testing.T) {
	frame := AppendHeartbeat(nil, 42)

	// Flip one payload byte: checksum must catch it.
	bad := bytes.Clone(frame)
	bad[frameHeaderLen] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt payload err = %v, want ErrBadFrame", err)
	}
	// Wrong magic.
	bad = bytes.Clone(frame)
	bad[0] = 'X'
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic err = %v, want ErrBadFrame", err)
	}
	// Truncated mid-frame.
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2])); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated err = %v, want ErrBadFrame", err)
	}
	// Absurd length.
	bad = bytes.Clone(frame)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("absurd length err = %v, want ErrBadFrame", err)
	}
}

// TestFollowerTailsLeader: live tailing end to end — events committed
// before and after the follower attaches all apply, raw bytes and
// version histories match, and the status reports synced with zero lag.
func TestFollowerTailsLeader(t *testing.T) {
	leader := store.OpenMemory()
	r1, r2 := testRules(t, 2), testRules(t, 3)
	if _, err := leader.Put("m", r1); err != nil {
		t.Fatal(err)
	}
	ts := startLeader(t, leader)
	fst := store.OpenMemory()
	f := startFollower(t, ts.URL, fst)

	waitFor(t, "catch-up", func() bool { return fst.Seq() == leader.Seq() })

	// Live events after attach.
	if _, err := leader.Put("m", r2); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("other", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Delete("other"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live tail", func() bool { return fst.Seq() == leader.Seq() })

	lr, lv, _ := leader.GetRaw("m")
	fr, fv, ok := fst.GetRaw("m")
	if !ok || lv != fv || !bytes.Equal(lr, fr) {
		t.Fatalf("follower head v%d != leader v%d (or bytes differ)", fv, lv)
	}
	if _, _, ok := fst.Get("other"); ok {
		t.Fatal("follower kept a deleted model")
	}
	li, _ := leader.Versions("m")
	fi, _ := fst.Versions("m")
	if len(li) != len(fi) {
		t.Fatalf("version history: leader %d, follower %d", len(li), len(fi))
	}

	waitFor(t, "synced status", func() bool { return f.Status().Synced })
	s := f.Status()
	if !s.Connected || s.LagRecords != 0 || s.AppliedSeq != leader.Seq() || s.LeaderSeq != leader.Seq() {
		t.Fatalf("status = %+v", s)
	}
}

// TestFollowerSnapshotBootstrap: a follower attaching behind the
// retained replication log bootstraps from a snapshot frame and still
// converges to identical state, including retained history.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	leader := store.OpenMemory(store.WithReplicationLog(2))
	for i := 0; i < 6; i++ {
		if _, err := leader.Put("m", testRules(t, float64(i+2))); err != nil {
			t.Fatal(err)
		}
	}
	ts := startLeader(t, leader)
	fst := store.OpenMemory()
	f := startFollower(t, ts.URL, fst)

	waitFor(t, "bootstrap catch-up", func() bool { return fst.Seq() == leader.Seq() })
	if got := f.Status().SnapshotBootstraps; got != 1 {
		t.Fatalf("bootstraps = %d, want 1", got)
	}
	lr, lv, _ := leader.GetRaw("m")
	fr, fv, ok := fst.GetRaw("m")
	if !ok || lv != fv || !bytes.Equal(lr, fr) {
		t.Fatalf("bootstrapped head v%d != leader v%d", fv, lv)
	}
	li, _ := leader.Versions("m")
	fi, _ := fst.Versions("m")
	if len(li) != len(fi) {
		t.Fatalf("version history: leader %d, follower %d", len(li), len(fi))
	}
	// The stream keeps tailing after the bootstrap.
	if _, err := leader.Put("m", testRules(t, 99)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-bootstrap tail", func() bool { return fst.Seq() == leader.Seq() })
}

// TestFollowerCompactionRace: the leader snapshots + compacts and trims
// its tiny replication log while the follower is mid-stream. The
// follower may be forced through any number of snapshot bootstraps but
// must converge, and every model it serves along the way must parse —
// never a torn or partial document.
func TestFollowerCompactionRace(t *testing.T) {
	dir := t.TempDir()
	// Durable leader snapshotting every 2 commits with a 1-event
	// replication log: almost every catch-up round outruns the log.
	leader, err := store.Open(dir, store.WithNoSync(),
		store.WithSnapshotEvery(2), store.WithReplicationLog(1))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	ts := startLeader(t, leader)
	fst := store.OpenMemory()
	f := startFollower(t, ts.URL, fst)

	// A reader goroutine hammers the follower's served model the whole
	// time: every observed document must be a loadable rule set.
	stop := make(chan struct{})
	done := make(chan struct{})
	var torn, reads atomic.Int32
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if raw, _, ok := fst.GetRaw("m"); ok {
				reads.Add(1)
				if _, err := core.Load(bytes.NewReader(raw)); err != nil {
					torn.Add(1)
					return
				}
			}
		}
	}()

	for i := 0; i < 40; i++ {
		if _, err := leader.Put("m", testRules(t, float64(i%7+2))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "convergence under compaction", func() bool { return fst.Seq() == leader.Seq() })
	// The model exists once converged, so the reader is guaranteed to
	// observe it — wait for that before stopping, or a scheduling race
	// could end the test with zero reads.
	waitFor(t, "reader observes the model", func() bool { return reads.Load() > 0 })
	close(stop)
	<-done
	if torn.Load() != 0 {
		t.Fatal("follower served a torn model")
	}
	if got := f.Status().SnapshotBootstraps; got < 1 {
		t.Fatalf("bootstraps = %d, want >= 1 with a 1-event log", got)
	}
	lr, lv, _ := leader.GetRaw("m")
	fr, fv, ok := fst.GetRaw("m")
	if !ok || lv != fv || !bytes.Equal(lr, fr) {
		t.Fatalf("converged head v%d != leader v%d", fv, lv)
	}
}

// TestFollowerReconnectsAfterLeaderRestart: kill the leader process
// (server + store), restart it on the same address and dir, and the
// follower re-attaches from its checkpointed seq with no duplicate
// application — version histories stay identical.
func TestFollowerReconnectsAfterLeaderRestart(t *testing.T) {
	dir := t.TempDir()
	leader, err := store.Open(dir, store.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("m", testRules(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("m", testRules(t, 3)); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serve := func(st *store.Store, l net.Listener) *http.Server {
		srv := &http.Server{Handler: &Handler{
			Store: st, Logger: quietLogger(), Heartbeat: 20 * time.Millisecond,
		}}
		go srv.Serve(l)
		return srv
	}
	srv := serve(leader, ln)

	fst := store.OpenMemory()
	f := startFollower(t, "http://"+addr, fst)
	waitFor(t, "initial catch-up", func() bool { return fst.Seq() == 2 })

	// Kill the leader: force-close connections, close the store.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "disconnect noticed", func() bool { return !f.Status().Connected })

	// Restart on the same address + dir, then commit more.
	leader2, err := store.Open(dir, store.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer leader2.Close()
	if got := leader2.Seq(); got != 2 {
		t.Fatalf("recovered leader seq = %d, want 2", got)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := serve(leader2, ln2)
	defer srv2.Close()

	if _, err := leader2.Put("m", testRules(t, 4)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-restart tail", func() bool { return fst.Seq() == 3 })

	s := f.Status()
	if s.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", s.Reconnects)
	}
	li, _ := leader2.Versions("m")
	fi, _ := fst.Versions("m")
	if len(li) != len(fi) || len(fi) != 3 {
		t.Fatalf("version history after restart: leader %d, follower %d, want 3 (no duplicates)", len(li), len(fi))
	}
	lr, _, _ := leader2.GetRaw("m")
	fr, _, _ := fst.GetRaw("m")
	if !bytes.Equal(lr, fr) {
		t.Fatal("follower bytes differ after leader restart")
	}
}

// TestFollowerDurableCheckpoint: a restarted DURABLE follower resumes
// from its own WAL's checkpointed seq — the reconnect asks the leader
// only for records after it, and nothing applies twice.
func TestFollowerDurableCheckpoint(t *testing.T) {
	leader := store.OpenMemory()
	for i := 0; i < 3; i++ {
		if _, err := leader.Put("m", testRules(t, float64(i+2))); err != nil {
			t.Fatal(err)
		}
	}
	ts := startLeader(t, leader)

	fdir := t.TempDir()
	fst, err := store.Open(fdir, store.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	f1 := startFollower(t, ts.URL, fst)
	waitFor(t, "first catch-up", func() bool { return fst.Seq() == 3 })
	_ = f1

	// "Crash" the follower: stop tailing, close its store.
	// (Cleanup-registered cancel would run later; do it inline via a
	// fresh follower below on the reopened store.)
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}

	fst2, err := store.Open(fdir, store.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer fst2.Close()
	if got := fst2.Seq(); got != 3 {
		t.Fatalf("reopened follower seq = %d, want checkpointed 3", got)
	}
	if _, err := leader.Put("m", testRules(t, 9)); err != nil {
		t.Fatal(err)
	}
	f2 := startFollower(t, ts.URL, fst2)
	waitFor(t, "resume from checkpoint", func() bool { return fst2.Seq() == 4 })
	if got := f2.Status().SnapshotBootstraps; got != 0 {
		t.Fatalf("bootstraps = %d, want 0: resume must use the checkpointed seq", got)
	}
	li, _ := leader.Versions("m")
	fi, _ := fst2.Versions("m")
	if len(li) != len(fi) {
		t.Fatalf("version history: leader %d, follower %d (duplicate application?)", len(li), len(fi))
	}
}

// TestHandlerRejectsBadFrom: a garbage ?from= answers 400 through the
// pluggable error writer.
func TestHandlerRejectsBadFrom(t *testing.T) {
	leader := store.OpenMemory()
	var gotStatus int
	h := &Handler{Store: leader, Logger: quietLogger(),
		WriteError: func(w http.ResponseWriter, status int, err error) {
			gotStatus = status
			http.Error(w, err.Error(), status)
		}}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/replicate?from=banana", nil))
	if rec.Code != http.StatusBadRequest || gotStatus != http.StatusBadRequest {
		t.Fatalf("status = %d (writer saw %d), want 400", rec.Code, gotStatus)
	}
}

// TestFollowerSurvivesGarbageLeader: a leader that answers non-200 or
// garbage bytes keeps the follower reconnecting without wedging it.
func TestFollowerSurvivesGarbageLeader(t *testing.T) {
	var mode atomic.Int32 // 0: 503, 1: garbage frames, 2: real stream
	leader := store.OpenMemory()
	if _, err := leader.Put("m", testRules(t, 2)); err != nil {
		t.Fatal(err)
	}
	real := &Handler{Store: leader, Logger: quietLogger(), Heartbeat: 20 * time.Millisecond}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch mode.Load() {
		case 0:
			http.Error(w, "not yet", http.StatusServiceUnavailable)
		case 1:
			fmt.Fprint(w, "this is not a frame stream")
		default:
			real.ServeHTTP(w, req)
		}
	}))
	t.Cleanup(ts.Close)

	fst := store.OpenMemory()
	f := startFollower(t, ts.URL, fst)
	waitFor(t, "retry past 503", func() bool { return f.Status().Reconnects >= 1 })
	mode.Store(1)
	prev := f.Status().Reconnects
	waitFor(t, "retry past garbage", func() bool { return f.Status().Reconnects > prev })
	mode.Store(2)
	waitFor(t, "eventual catch-up", func() bool { return fst.Seq() == leader.Seq() })
}
