package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/store"
)

// Default reconnect backoff bounds and the stall watchdog.
const (
	DefaultMinBackoff   = 100 * time.Millisecond
	DefaultMaxBackoff   = 5 * time.Second
	DefaultStallTimeout = 30 * time.Second
)

// Options configures a Follower.
type Options struct {
	// Leader is the leader's base URL, e.g. "http://leader:8080". The
	// replication stream is GET Leader+"/v1/replicate".
	Leader string
	// Store is the local replica the stream folds into. It must be the
	// follower's OWN store (its own dir or memory) — never the leader's.
	Store *store.Store

	Client   *http.Client  // default: a fresh client with no timeout
	Logger   *slog.Logger  // default slog.Default()
	Registry *obs.Registry // rr_replica_* metrics; nil skips registration
	// Tracer records a replica.apply span per applied event whose
	// replicated Trace stamp parses, continuing the LEADER's originating
	// trace ID — so /debug/traces/{id} on the follower shows this node's
	// share of the mutation the leader committed. Nil disables the spans.
	Tracer *trace.Tracer

	MinBackoff time.Duration // reconnect backoff floor; DefaultMinBackoff if 0
	MaxBackoff time.Duration // reconnect backoff ceiling; DefaultMaxBackoff if 0
	// StallTimeout aborts a connection that delivers no frame (not even
	// a heartbeat) for this long — a dead leader must not hold a
	// follower in "connected" forever. DefaultStallTimeout if 0.
	StallTimeout time.Duration
}

// Status is a point-in-time view of the follower, served by /readyz.
type Status struct {
	Leader     string `json:"leader"`
	Connected  bool   `json:"connected"`
	Synced     bool   `json:"synced"` // caught up to the leader head at last contact
	AppliedSeq uint64 `json:"applied_seq"`
	LeaderSeq  uint64 `json:"leader_seq"`
	LagRecords uint64 `json:"lag_records"`
	// LagSeconds bounds read staleness: seconds since the follower last
	// knew it was caught up to the leader head.
	LagSeconds         float64 `json:"lag_seconds"`
	Reconnects         uint64  `json:"reconnects"`
	SnapshotBootstraps uint64  `json:"snapshot_bootstraps"`
}

// Follower tails a leader's replication stream into a local store. Run
// drives the loop; Status answers the probes. All reads the replica
// serves go through the store as usual — the follower only writes.
type Follower struct {
	leader       string
	st           *store.Store
	client       *http.Client
	logger       *slog.Logger
	minBackoff   time.Duration
	maxBackoff   time.Duration
	stallTimeout time.Duration
	tracer       *trace.Tracer

	mu           sync.Mutex
	connected    bool
	leaderSeq    uint64
	lastCaughtUp time.Time // zero until first caught-up contact
	reconnects   uint64
	bootstraps   uint64
	start        time.Time

	met followerMetrics
}

type followerMetrics struct {
	appliedSeq *obs.Gauge
	leaderSeq  *obs.Gauge
	lagRecords *obs.Gauge
	lagSeconds *obs.Gauge
	connected  *obs.Gauge
	reconnects *obs.Counter
	bootstraps *obs.Counter
	applied    *obs.Counter
}

// New builds a Follower. The store must be open; Run does the rest.
func New(opts Options) (*Follower, error) {
	if opts.Leader == "" {
		return nil, errors.New("replica: missing leader URL")
	}
	if opts.Store == nil {
		return nil, errors.New("replica: missing store")
	}
	f := &Follower{
		leader:       opts.Leader,
		st:           opts.Store,
		client:       opts.Client,
		logger:       opts.Logger,
		minBackoff:   opts.MinBackoff,
		maxBackoff:   opts.MaxBackoff,
		stallTimeout: opts.StallTimeout,
		tracer:       opts.Tracer,
		start:        time.Now(),
	}
	if f.client == nil {
		f.client = &http.Client{} // deliberately no Timeout: the stream is long-lived
	}
	if f.logger == nil {
		f.logger = slog.Default()
	}
	if f.minBackoff <= 0 {
		f.minBackoff = DefaultMinBackoff
	}
	if f.maxBackoff < f.minBackoff {
		f.maxBackoff = DefaultMaxBackoff
	}
	if f.stallTimeout <= 0 {
		f.stallTimeout = DefaultStallTimeout
	}
	if reg := opts.Registry; reg != nil {
		f.met = followerMetrics{
			appliedSeq: reg.Gauge("rr_replica_applied_seq",
				"Last leader sequence number applied to the local replica."),
			leaderSeq: reg.Gauge("rr_replica_leader_seq",
				"Leader head sequence number at last contact."),
			lagRecords: reg.Gauge("rr_replica_lag_records",
				"Committed leader records not yet applied locally."),
			lagSeconds: reg.Gauge("rr_replica_lag_seconds",
				"Seconds since the replica last knew it was caught up."),
			connected: reg.Gauge("rr_replica_connected",
				"1 while the replication stream is connected."),
			reconnects: reg.Counter("rr_replica_reconnects_total",
				"Replication stream reconnect attempts after a failure."),
			bootstraps: reg.Counter("rr_replica_snapshot_bootstraps_total",
				"Full snapshot bootstraps (follower behind the retained log)."),
			applied: reg.Counter("rr_replica_events_applied_total",
				"Replicated events applied to the local store."),
		}
		reg.RegisterCollector(func() {
			s := f.Status()
			f.met.lagRecords.Set(float64(s.LagRecords))
			f.met.lagSeconds.Set(s.LagSeconds)
		})
	}
	return f, nil
}

// Status reports the follower's current replication position and lag.
func (f *Follower) Status() Status {
	applied := f.st.Seq()
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Status{
		Leader:             f.leader,
		Connected:          f.connected,
		AppliedSeq:         applied,
		LeaderSeq:          f.leaderSeq,
		Reconnects:         f.reconnects,
		SnapshotBootstraps: f.bootstraps,
	}
	if f.leaderSeq > applied {
		s.LagRecords = f.leaderSeq - applied
	}
	s.Synced = f.connected && !f.lastCaughtUp.IsZero() && s.LagRecords == 0
	since := f.lastCaughtUp
	if since.IsZero() {
		since = f.start // never caught up: lag is the follower's whole lifetime
	}
	s.LagSeconds = time.Since(since).Seconds()
	return s
}

// Run tails the leader until ctx is cancelled, reconnecting with
// exponential backoff from the last applied seq after any failure. It
// always returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.minBackoff
	for attempt := 0; ; attempt++ {
		frames, err := f.tail(ctx)
		f.setConnected(false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if frames > 0 {
			backoff = f.minBackoff // progress was made: fresh fault, fast retry
		}
		f.logger.Warn("replication stream lost; reconnecting",
			"leader", f.leader, "applied", f.st.Seq(),
			"backoff", backoff, "error", err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		f.mu.Lock()
		f.reconnects++
		f.mu.Unlock()
		if f.met.reconnects != nil {
			f.met.reconnects.Inc()
		}
		if backoff *= 2; backoff > f.maxBackoff {
			backoff = f.maxBackoff
		}
	}
}

// tail runs one connection: dial from the last applied seq, fold frames
// until the stream breaks. Returns the number of frames processed.
func (f *Follower) tail(ctx context.Context) (frames int, err error) {
	// The stall watchdog cancels the request when no frame — not even a
	// heartbeat — arrives within the window, unsticking reads from a
	// leader whose TCP connection died silently.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchdog := time.AfterFunc(f.stallTimeout, cancel)
	defer watchdog.Stop()

	from := f.st.Seq()
	url := fmt.Sprintf("%s/v1/replicate?from=%d", f.leader, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("replica: leader answered %s: %s", resp.Status, body)
	}
	f.setConnected(true)
	f.logger.Info("replication stream connected", "leader", f.leader, "from", from)

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		fr, err := ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = errors.New("replica: leader closed the stream")
			}
			return frames, err
		}
		watchdog.Reset(f.stallTimeout)
		frames++
		switch fr.Kind {
		case KindEvent:
			sp := f.applySpan(ctx, fr.Event)
			applied, err := f.st.ApplyEvent(fr.Event)
			if sp != nil {
				sp.SetAttr("applied", applied)
				if err != nil {
					sp.SetAttr("error", err.Error())
				}
				sp.End()
			}
			if err != nil {
				// A gap (ErrSnapshotNeeded) or a corrupt event: drop the
				// connection and re-dial from the applied seq — the leader
				// ships a snapshot if the log no longer covers us.
				return frames, err
			}
			if applied && f.met.applied != nil {
				f.met.applied.Inc()
			}
			f.observe(fr.Event.Seq, false)
		case KindSnapshot:
			if err := f.st.RestoreSnapshot(fr.Snapshot); err != nil {
				return frames, err
			}
			f.mu.Lock()
			f.bootstraps++
			f.mu.Unlock()
			if f.met.bootstraps != nil {
				f.met.bootstraps.Inc()
			}
			f.logger.Info("replica bootstrapped from snapshot",
				"leader", f.leader, "seq", fr.Snapshot.Seq)
			f.observe(fr.Snapshot.Seq, false)
		case KindHeartbeat:
			f.observe(fr.Seq, true)
		}
	}
}

// applySpan roots a replica.apply span continuing the leader trace
// stamped on ev, or nil when untraced/untraceable: each applied
// mutation becomes one follower-local trace under the leader's trace
// ID, with a remote "parent" reference back to the span that committed
// it on the leader.
func (f *Follower) applySpan(ctx context.Context, ev store.Event) *trace.Span {
	if f.tracer == nil || ev.Trace == "" {
		return nil
	}
	remote, err := trace.ParseTraceparent(ev.Trace)
	if err != nil {
		return nil
	}
	_, sp := f.tracer.StartRoot(ctx, "replica.apply", remote)
	sp.SetAttr("op", ev.Op)
	sp.SetAttr("model", ev.Name)
	sp.SetAttr("seq", ev.Seq)
	if ev.Version > 0 {
		sp.SetAttr("version", ev.Version)
	}
	return sp
}

// observe folds a frame's view of the leader head into the status. A
// heartbeat carries the authoritative head (exact, may move backwards
// across leader restarts); events only raise it.
func (f *Follower) observe(seq uint64, authoritative bool) {
	applied := f.st.Seq()
	f.mu.Lock()
	if authoritative || seq > f.leaderSeq {
		f.leaderSeq = seq
	}
	if applied >= f.leaderSeq {
		f.lastCaughtUp = time.Now()
	}
	leaderSeq := f.leaderSeq
	f.mu.Unlock()
	if f.met.appliedSeq != nil {
		f.met.appliedSeq.Set(float64(applied))
		f.met.leaderSeq.Set(float64(leaderSeq))
	}
}

func (f *Follower) setConnected(v bool) {
	f.mu.Lock()
	f.connected = v
	f.mu.Unlock()
	if f.met.connected != nil {
		if v {
			f.met.connected.Set(1)
		} else {
			f.met.connected.Set(0)
		}
	}
}
