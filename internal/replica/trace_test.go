package replica

import (
	"context"
	"testing"
	"time"

	"ratiorules/internal/obs/trace"
	"ratiorules/internal/store"
)

// TestFollowerContinuesLeaderTrace commits a traced mutation on the
// leader and asserts the follower seals a replica.apply span under the
// SAME trace ID the leader's request ran under, with a remote-parent
// reference back to the leader-side span — the replication half of
// cross-node trace propagation.
func TestFollowerContinuesLeaderTrace(t *testing.T) {
	leaderStore := store.OpenMemory(store.WithLogger(quietLogger()))
	ts := startLeader(t, leaderStore)

	followerStore := store.OpenMemory(store.WithLogger(quietLogger()))
	followerTracer := trace.New(trace.Config{})
	f, err := New(Options{
		Leader:       ts.URL,
		Store:        followerStore,
		Logger:       quietLogger(),
		Tracer:       followerTracer,
		MinBackoff:   10 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		StallTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("follower did not stop")
		}
	})

	// Commit through PutContext with a live span, the way a traced
	// HTTP PUT does — the journal stamps the event with the
	// traceparent of whatever span is active in ctx.
	leaderTracer := trace.New(trace.Config{})
	putCtx, sp := leaderTracer.StartRoot(context.Background(), "PUT /v1/rules/{name}", trace.SpanContext{})
	if _, err := leaderStore.PutContext(putCtx, "m", testRules(t, 2)); err != nil {
		t.Fatal(err)
	}
	sp.End()
	traceID := sp.TraceID()

	waitFor(t, "follower sync", func() bool {
		return followerStore.Seq() >= leaderStore.Seq()
	})
	var td trace.TraceData
	waitFor(t, "follower trace under leader trace ID", func() bool {
		var ok bool
		td, ok = followerTracer.Recorder().Get(traceID)
		return ok
	})

	var apply *trace.SpanData
	for i := range td.Spans {
		if td.Spans[i].Name == "replica.apply" {
			apply = &td.Spans[i]
		}
	}
	if apply == nil {
		t.Fatalf("no replica.apply span in follower trace: %+v", td.Spans)
	}
	attrs := map[string]any{}
	for _, a := range apply.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["model"] != "m" {
		t.Errorf("replica.apply attrs = %v, want model=m", attrs)
	}
	// The span's parent is the leader-side span, absent from the local
	// span set — it must surface as a remote-parent reference.
	var remoteParent bool
	for _, ref := range trace.RemoteRefs(td.Spans) {
		if ref.Kind == "parent" && ref.SpanID == apply.ParentID {
			remoteParent = true
		}
	}
	if !remoteParent {
		t.Errorf("no remote-parent ref for replica.apply (parent %s): %+v",
			apply.ParentID, trace.RemoteRefs(td.Spans))
	}
}

// TestUntracedCommitAppliesQuietly pins the negative space: an
// untraced leader commit replicates with no trace stamp, and a tracing
// follower applies it without opening a span.
func TestUntracedCommitAppliesQuietly(t *testing.T) {
	leaderStore := store.OpenMemory(store.WithLogger(quietLogger()))
	ts := startLeader(t, leaderStore)

	followerStore := store.OpenMemory(store.WithLogger(quietLogger()))
	followerTracer := trace.New(trace.Config{})
	f, err := New(Options{
		Leader:       ts.URL,
		Store:        followerStore,
		Logger:       quietLogger(),
		Tracer:       followerTracer,
		MinBackoff:   10 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		StallTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	if _, err := leaderStore.Put("plain", testRules(t, 3)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower sync", func() bool {
		return followerStore.Seq() >= leaderStore.Seq()
	})
	if n := followerTracer.Recorder().Len(); n != 0 {
		t.Fatalf("follower recorded %d traces for an untraced commit, want 0", n)
	}
}
