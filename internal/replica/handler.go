package replica

import (
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"ratiorules/internal/store"
)

// DefaultHeartbeat is the idle heartbeat interval of the leader stream.
const DefaultHeartbeat = 5 * time.Second

// streamDeadlineSlack is how far read/write deadlines are rolled ahead
// while the stream makes progress — generous enough that several missed
// heartbeats, not one slow write, end the connection.
const streamDeadlineSlack = 60 * time.Second

// Handler is the leader side of replication: GET ?from=N streams
// committed events after seq N as CRC frames, interleaved with idle
// heartbeats carrying the head seq. When N precedes the retained
// replication log (follower too far behind, or the leader restarted) a
// full snapshot frame ships first and the stream resumes from its seq.
// The response never ends on its own — it runs until the client goes
// away or the server shuts down.
type Handler struct {
	Store     *store.Store
	Logger    *slog.Logger
	Heartbeat time.Duration // idle heartbeat interval; DefaultHeartbeat if 0

	// WriteError answers an invalid request. The server mounts its
	// error-envelope writer here; bare http.Error is the fallback.
	WriteError func(w http.ResponseWriter, status int, err error)
}

func (h *Handler) writeError(w http.ResponseWriter, status int, err error) {
	if h.WriteError != nil {
		h.WriteError(w, status, err)
		return
	}
	http.Error(w, err.Error(), status)
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	from := uint64(0)
	if raw := req.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			h.writeError(w, http.StatusBadRequest,
				errors.New("invalid from: want a decimal sequence number"))
			return
		}
		from = v
	}
	heartbeat := h.Heartbeat
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeat
	}
	logger := h.Logger
	if logger == nil {
		logger = slog.Default()
	}

	// Long-lived stream on a server with finite Read/WriteTimeouts: roll
	// both deadlines forward on every iteration, exactly like /ingest.
	rc := http.NewResponseController(w)
	extend := func() {
		t := time.Now().Add(streamDeadlineSlack)
		_ = rc.SetReadDeadline(t)
		_ = rc.SetWriteDeadline(t)
	}
	extend()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	ctx := req.Context()
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()

	// The first frame is always a heartbeat so a fresh follower learns
	// the head seq (and its lag) before any catch-up data arrives.
	buf := AppendHeartbeat(nil, h.Store.Seq())
	cursor := from
	logger.Info("replication stream opened", "from", from, "head", h.Store.Seq())
	frames := 0
	for {
		if len(buf) > 0 {
			if _, err := w.Write(buf); err != nil {
				logger.Info("replication stream closed", "from", from,
					"cursor", cursor, "frames", frames, "reason", err)
				return
			}
			_ = rc.Flush()
			buf = buf[:0]
			extend()
		}

		// Arm the change channel BEFORE reading the log: a commit landing
		// between EventsSince and the select below still wakes us.
		changed := h.Store.Changed()
		events, err := h.Store.EventsSince(cursor)
		switch {
		case errors.Is(err, store.ErrSnapshotNeeded):
			doc := h.Store.SnapshotDoc()
			if buf, err = AppendSnapshot(buf, doc); err != nil {
				logger.Error("replication snapshot encode failed", "error", err)
				return
			}
			logger.Info("replication snapshot shipped", "from", cursor, "seq", doc.Seq)
			cursor = doc.Seq
			frames++
			continue
		case err != nil:
			logger.Error("replication log read failed", "from", cursor, "error", err)
			return
		}
		if len(events) > 0 {
			for _, ev := range events {
				if buf, err = AppendEvent(buf, ev); err != nil {
					logger.Error("replication event encode failed", "error", err)
					return
				}
			}
			cursor = events[len(events)-1].Seq
			frames += len(events)
			continue
		}

		select {
		case <-ctx.Done():
			logger.Info("replication stream closed", "from", from,
				"cursor", cursor, "frames", frames, "reason", ctx.Err())
			return
		case <-changed:
		case <-ticker.C:
			buf = AppendHeartbeat(buf, h.Store.Seq())
			frames++
		}
	}
}
