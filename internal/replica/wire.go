// Package replica ships the store's committed WAL to follower
// processes: a leader-side HTTP handler streams events from a
// client-supplied seq (falling back to a full snapshot when the
// follower is behind the retained replication log), and a Follower
// tails that stream into its own read-only store replica, reconnecting
// with backoff from the last applied seq. Because events carry the
// canonical raw model JSON and the follower journals them under the
// leader's seq, follower reads — bodies and ETags — are byte-identical
// to the leader at the same seq, and a restarted follower resumes from
// its checkpointed position with no record applied twice.
package replica

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ratiorules/internal/store"
)

// The stream speaks CRC-framed frames rather than bare NDJSON so a
// half-written record from a dying leader can never be half-applied. A
// frame is
//
//	magic u32 | payload len u32 | payload | crc32c u32
//
// with the Castagnoli checksum covering header and payload, the same
// polynomial as the cluster wire. Three frame kinds:
//
//	"RRE1"  event      payload = store.Event JSON
//	"RRS1"  snapshot   payload = store.SnapshotDoc JSON
//	"RRH1"  heartbeat  payload = 8-byte LE leader head seq
//
// Heartbeats flow while the stream is idle so the follower can bound
// its staleness (and detect a dead leader) without any event traffic.
const (
	eventMagic     = uint32('R')<<24 | uint32('R')<<16 | uint32('E')<<8 | uint32('1')
	snapshotMagic  = uint32('R')<<24 | uint32('R')<<16 | uint32('S')<<8 | uint32('1')
	heartbeatMagic = uint32('R')<<24 | uint32('R')<<16 | uint32('H')<<8 | uint32('1')

	frameHeaderLen = 4 + 4

	// maxFramePayload bounds a single frame; snapshots of realistic rule
	// stores are far smaller, and a corrupt length must not allocate GBs.
	maxFramePayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame covers every framing violation: wrong magic, absurd
// lengths, checksum mismatches, or undecodable payloads.
var ErrBadFrame = errors.New("replica: bad wire frame")

// Kind tags a decoded frame.
type Kind int

const (
	KindEvent Kind = iota + 1
	KindSnapshot
	KindHeartbeat
)

// Frame is one decoded replication frame. Exactly one of Event /
// Snapshot / heartbeat Seq is meaningful, per Kind.
type Frame struct {
	Kind     Kind
	Event    store.Event
	Snapshot *store.SnapshotDoc
	Seq      uint64 // heartbeat: leader head seq
}

// appendFrame encodes header+payload+crc onto dst.
func appendFrame(dst []byte, magic uint32, payload []byte) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, magic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// AppendEvent encodes one committed event frame onto dst.
func AppendEvent(dst []byte, ev store.Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return dst, fmt.Errorf("replica: encoding event seq %d: %w", ev.Seq, err)
	}
	return appendFrame(dst, eventMagic, payload), nil
}

// AppendSnapshot encodes a full snapshot frame onto dst.
func AppendSnapshot(dst []byte, doc *store.SnapshotDoc) ([]byte, error) {
	payload, err := json.Marshal(doc)
	if err != nil {
		return dst, fmt.Errorf("replica: encoding snapshot seq %d: %w", doc.Seq, err)
	}
	return appendFrame(dst, snapshotMagic, payload), nil
}

// AppendHeartbeat encodes a heartbeat carrying the leader head seq.
func AppendHeartbeat(dst []byte, seq uint64) []byte {
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], seq)
	return appendFrame(dst, heartbeatMagic, payload[:])
}

// ReadFrame decodes the next frame from r. io.EOF passes through
// untouched when the stream ends cleanly between frames; everything
// else wraps ErrBadFrame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // io.EOF: clean end between frames
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Frame{}, fmt.Errorf("replica: truncated frame header: %w", ErrBadFrame)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	switch magic {
	case eventMagic, snapshotMagic, heartbeatMagic:
	default:
		return Frame{}, fmt.Errorf("replica: frame magic %08x: %w", magic, ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFramePayload {
		return Frame{}, fmt.Errorf("replica: frame payload %d bytes: %w", n, ErrBadFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("replica: truncated frame payload: %w", ErrBadFrame)
	}
	crc := crc32.Checksum(hdr[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return Frame{}, fmt.Errorf("replica: truncated frame checksum: %w", ErrBadFrame)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != crc {
		return Frame{}, fmt.Errorf("replica: frame crc %08x, want %08x: %w", got, crc, ErrBadFrame)
	}

	switch magic {
	case eventMagic:
		var ev store.Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return Frame{}, fmt.Errorf("replica: decoding event frame: %v: %w", err, ErrBadFrame)
		}
		return Frame{Kind: KindEvent, Event: ev}, nil
	case snapshotMagic:
		doc := new(store.SnapshotDoc)
		if err := json.Unmarshal(payload, doc); err != nil {
			return Frame{}, fmt.Errorf("replica: decoding snapshot frame: %v: %w", err, ErrBadFrame)
		}
		return Frame{Kind: KindSnapshot, Snapshot: doc}, nil
	default: // heartbeatMagic
		if len(payload) != 8 {
			return Frame{}, fmt.Errorf("replica: heartbeat payload %d bytes: %w", len(payload), ErrBadFrame)
		}
		return Frame{Kind: KindHeartbeat, Seq: binary.LittleEndian.Uint64(payload)}, nil
	}
}
