package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

// linearFixture builds rows with an exact linear relation:
// c = 2a + 3b + 1.
func linearFixture(rng *rand.Rand, n int) *matrix.Dense {
	x := matrix.NewDense(n, 3)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64()*2, rng.NormFloat64()*3
		x.SetRow(i, []float64{a, b, 2*a + 3*b + 1})
	}
	return x
}

func TestFitRecoversExactRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	x := linearFixture(rng, 100)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.PredictColumn([]float64{1, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-8 {
		t.Errorf("PredictColumn = %v, want 6", got)
	}
	// The inverse direction is also linear: a = (c − 3b − 1)/2.
	got, err = model.PredictColumn([]float64{0, 2, 11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("inverse prediction = %v, want 2", got)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(matrix.NewDense(10, 1)); err == nil {
		t.Error("1 column must fail")
	}
	if _, err := Fit(matrix.NewDense(2, 3)); err == nil {
		t.Error("too few rows must fail")
	}
}

func TestFillRowSingleHole(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x := linearFixture(rng, 80)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.FillRow([]float64{1, 1, -99}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[2]-6) > 1e-8 {
		t.Errorf("filled = %v, want 6", got[2])
	}
	if got[0] != 1 || got[1] != 1 {
		t.Error("known cells changed")
	}
}

func TestFillRowMultiHoleMeanImputes(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x := linearFixture(rng, 80)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.FillRow([]float64{1, 0, 0}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Hole 2 must be predicted with b imputed at its mean, not with the
	// freshly predicted hole 1.
	means := x.ColMeans()
	want, err := model.PredictColumn([]float64{1, means[1], 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[2]-want) > 1e-10 {
		t.Errorf("multi-hole fill = %v, want mean-imputed %v", got[2], want)
	}
}

func TestFillRowErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	model, err := Fit(linearFixture(rng, 50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.FillRow([]float64{1}, []int{0}); !errors.Is(err, ErrWidth) {
		t.Errorf("width: err = %v, want ErrWidth", err)
	}
	if _, err := model.FillRow([]float64{1, 2, 3}, []int{5}); !errors.Is(err, ErrBadHole) {
		t.Errorf("range: err = %v, want ErrBadHole", err)
	}
	if _, err := model.FillRow([]float64{1, 2, 3}, []int{1, 1}); !errors.Is(err, ErrBadHole) {
		t.Errorf("duplicate: err = %v, want ErrBadHole", err)
	}
	if _, err := model.PredictColumn([]float64{1, 2}, 0); !errors.Is(err, ErrWidth) {
		t.Errorf("predict width: err = %v, want ErrWidth", err)
	}
	if _, err := model.PredictColumn([]float64{1, 2, 3}, 7); !errors.Is(err, ErrBadHole) {
		t.Errorf("predict target: err = %v, want ErrBadHole", err)
	}
}

func TestWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	model, err := Fit(linearFixture(rng, 50))
	if err != nil {
		t.Fatal(err)
	}
	if model.Width() != 3 {
		t.Errorf("Width = %d, want 3", model.Width())
	}
}

func TestFitCollinearFallsBack(t *testing.T) {
	// Columns 0 and 1 identical: the design is singular; the pseudo-inverse
	// fallback must still produce a usable model.
	rng := rand.New(rand.NewSource(65))
	x := matrix.NewDense(50, 3)
	for i := 0; i < 50; i++ {
		a := rng.NormFloat64()
		x.SetRow(i, []float64{a, a, 3 * a})
	}
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.PredictColumn([]float64{2, 2, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-6 {
		t.Errorf("collinear prediction = %v, want 6", got)
	}
}
