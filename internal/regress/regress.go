// Package regress implements multiple linear regression, the statistical
// baseline the paper mentions as "remotely related" to Ratio Rules
// (Sec. 5, Methods): it can predict missing values for one designated
// column when everything else is known, whereas Ratio Rules predict
// arbitrary subsets of columns.
//
// The model here fits one regression per target column (all remaining
// columns plus an intercept as regressors), so it can participate in the
// guessing-error benchmarks alongside Ratio Rules and col-avgs. For
// multi-hole records it imputes the other holes with training means before
// applying the target's regression — exactly the limitation the paper
// points out, made concrete.
package regress

import (
	"errors"
	"fmt"

	"ratiorules/internal/linsolve"
	"ratiorules/internal/matrix"
	"ratiorules/internal/svd"
)

// ErrWidth is returned for records whose width disagrees with the model.
var ErrWidth = errors.New("regress: record width mismatch")

// ErrBadHole is returned for invalid hole indices.
var ErrBadHole = errors.New("regress: invalid hole index")

// Model holds one fitted regression per column.
type Model struct {
	means []float64
	// coef[j] has M entries: the weight of every attribute l != j (entry j
	// itself unused) plus intercept[j].
	coef      [][]float64
	intercept []float64
}

// Fit trains a per-column multiple linear regression on x.
// It needs at least M+1 rows; near-collinear designs fall back to the
// minimum-norm least-squares solution.
func Fit(x *matrix.Dense) (*Model, error) {
	n, m := x.Dims()
	if m < 2 {
		return nil, fmt.Errorf("regress: need at least 2 columns, have %d", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("regress: need at least %d rows for %d columns, have %d", m+1, m, n)
	}
	model := &Model{
		means:     x.ColMeans(),
		coef:      make([][]float64, m),
		intercept: make([]float64, m),
	}
	// Design matrix for target j: columns l != j plus an all-ones column.
	design := matrix.NewDense(n, m) // m-1 regressors + intercept
	rhs := make([]float64, n)
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			row := x.RawRow(i)
			drow := design.RawRow(i)
			c := 0
			for l := 0; l < m; l++ {
				if l == j {
					continue
				}
				drow[c] = row[l]
				c++
			}
			drow[m-1] = 1
			rhs[i] = row[j]
		}
		w, err := linsolve.SolveLeastSquares(design, rhs)
		if err != nil {
			if !errors.Is(err, linsolve.ErrSingular) {
				return nil, fmt.Errorf("regress: fitting column %d: %w", j, err)
			}
			w, err = svd.SolveLeastSquares(design, rhs)
			if err != nil {
				return nil, fmt.Errorf("regress: fitting singular column %d: %w", j, err)
			}
		}
		full := make([]float64, m)
		c := 0
		for l := 0; l < m; l++ {
			if l == j {
				continue
			}
			full[l] = w[c]
			c++
		}
		model.coef[j] = full
		model.intercept[j] = w[m-1]
	}
	return model, nil
}

// Width implements the estimator contract shared with core.
func (m *Model) Width() int { return len(m.means) }

// PredictColumn predicts attribute target from a record whose other values
// are all known.
func (m *Model) PredictColumn(row []float64, target int) (float64, error) {
	if len(row) != len(m.means) {
		return 0, fmt.Errorf("regress: record width %d, want %d: %w", len(row), len(m.means), ErrWidth)
	}
	if target < 0 || target >= len(m.means) {
		return 0, fmt.Errorf("regress: target %d out of range [0,%d): %w", target, len(m.means), ErrBadHole)
	}
	s := m.intercept[target]
	for l, w := range m.coef[target] {
		if l == target {
			continue
		}
		s += w * row[l]
	}
	return s, nil
}

// FillRow implements the same estimator contract as core.Rules: holes are
// predicted by their column's regression, with any *other* holes imputed
// by the training means first (regression cannot natively handle multiple
// simultaneous unknowns).
func (m *Model) FillRow(row []float64, holes []int) ([]float64, error) {
	width := len(m.means)
	if len(row) != width {
		return nil, fmt.Errorf("regress: record width %d, want %d: %w", len(row), width, ErrWidth)
	}
	seen := make(map[int]bool, len(holes))
	for _, j := range holes {
		if j < 0 || j >= width {
			return nil, fmt.Errorf("regress: hole %d out of range [0,%d): %w", j, width, ErrBadHole)
		}
		if seen[j] {
			return nil, fmt.Errorf("regress: duplicate hole %d: %w", j, ErrBadHole)
		}
		seen[j] = true
	}
	// Mean-impute every hole, then regress each hole from that imputed
	// base (not from other freshly predicted holes, to stay order
	// independent).
	base := make([]float64, width)
	copy(base, row)
	for _, j := range holes {
		base[j] = m.means[j]
	}
	out := make([]float64, width)
	copy(out, base)
	for _, j := range holes {
		v, err := m.PredictColumn(base, j)
		if err != nil {
			return nil, err
		}
		out[j] = v
	}
	return out, nil
}
