// Package stats implements the streaming statistics that make Ratio Rules
// mining single-pass: the column-average and covariance accumulation of
// Fig. 2(a) in Korn et al. (VLDB 1998), together with the helper statistics
// (RMS, standard deviations, z-scores) the guessing-error and outlier
// machinery needs.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ratiorules/internal/matrix"
)

// ErrNoData is returned when a statistic is requested from an accumulator
// that has not seen any rows.
var ErrNoData = errors.New("stats: no rows accumulated")

// ErrWidth is returned when a row's width disagrees with the accumulator.
var ErrWidth = errors.New("stats: row width mismatch")

// ErrBadValue is returned when a pushed row contains NaN or ±Inf; such
// cells would silently poison every covariance entry they touch.
var ErrBadValue = errors.New("stats: row contains NaN or Inf")

// CovAccumulator accumulates column sums and raw cross-products in a single
// pass over the rows of an N×M matrix, exactly as the paper's Fig. 2(a)
// pseudocode: after all rows are pushed, the centered scatter matrix is
// recovered as C[j][l] = Σᵢ x[i][j]·x[i][l] − N·avg[j]·avg[l].
//
// The zero value is not usable; construct with NewCovAccumulator.
type CovAccumulator struct {
	m     int
	n     int
	sums  []float64
	cross *matrix.Dense // upper triangle maintained, mirrored on demand
}

// NewCovAccumulator returns an accumulator for rows of width m.
// It panics if m is negative.
func NewCovAccumulator(m int) *CovAccumulator {
	if m < 0 {
		panic(fmt.Sprintf("stats: NewCovAccumulator with negative width %d", m))
	}
	return &CovAccumulator{
		m:     m,
		sums:  make([]float64, m),
		cross: matrix.NewDense(m, m),
	}
}

// Push folds one row into the running sums. This is the inner loop of the
// paper's single-pass algorithm: O(M²) work per row, no retained rows.
// Rows containing NaN or ±Inf are rejected with ErrBadValue.
func (c *CovAccumulator) Push(row []float64) error {
	if len(row) != c.m {
		return fmt.Errorf("stats: row width %d, want %d: %w", len(row), c.m, ErrWidth)
	}
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stats: column %d has value %v: %w", j, v, ErrBadValue)
		}
	}
	c.n++
	for j, v := range row {
		c.sums[j] += v
		if v == 0 {
			continue
		}
		r := c.cross.RawRow(j)
		for l := j; l < c.m; l++ {
			r[l] += v * row[l]
		}
	}
	return nil
}

// PushWeighted folds one row with an integer multiplicity — equivalent to
// pushing the row `weight` times, in O(M²) instead of O(weight·M²). Sales
// databases often store identical baskets with a count; this keeps the
// single-pass property while honoring the multiplicities.
func (c *CovAccumulator) PushWeighted(row []float64, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("stats: weight %d must be positive: %w", weight, ErrBadValue)
	}
	if len(row) != c.m {
		return fmt.Errorf("stats: row width %d, want %d: %w", len(row), c.m, ErrWidth)
	}
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stats: column %d has value %v: %w", j, v, ErrBadValue)
		}
	}
	c.n += weight
	w := float64(weight)
	for j, v := range row {
		c.sums[j] += w * v
		if v == 0 {
			continue
		}
		r := c.cross.RawRow(j)
		for l := j; l < c.m; l++ {
			r[l] += w * v * row[l]
		}
	}
	return nil
}

// PushSparse folds one sparse row into the running sums, touching only
// the nonzero cells: O(nnz) for the column sums and O(nnz²) for the
// cross-products, against O(M²) for the dense Push. For the paper's
// market-basket matrices (a customer touches a handful of the M products)
// this is the difference between tractable and not.
func (c *CovAccumulator) PushSparse(row matrix.SparseVec) error {
	if row.Len != c.m {
		return fmt.Errorf("stats: sparse row width %d, want %d: %w", row.Len, c.m, ErrWidth)
	}
	for i, v := range row.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stats: column %d has value %v: %w", row.Idx[i], v, ErrBadValue)
		}
	}
	c.n++
	for i, j := range row.Idx {
		v := row.Val[i]
		c.sums[j] += v
		r := c.cross.RawRow(j)
		for p := i; p < len(row.Idx); p++ {
			r[row.Idx[p]] += v * row.Val[p]
		}
	}
	return nil
}

// Merge folds another accumulator of the same width into c. Because the
// single-pass sums are plain additions, accumulators built on disjoint row
// shards merge exactly — the basis for parallel mining over partitioned
// data (cf. the parallel association-mining line of work the paper cites).
func (c *CovAccumulator) Merge(other *CovAccumulator) error {
	if other.m != c.m {
		return fmt.Errorf("stats: merging accumulator of width %d into %d: %w",
			other.m, c.m, ErrWidth)
	}
	c.n += other.n
	for j := range c.sums {
		c.sums[j] += other.sums[j]
	}
	for j := 0; j < c.m; j++ {
		dst, src := c.cross.RawRow(j), other.cross.RawRow(j)
		for l := j; l < c.m; l++ {
			dst[l] += src[l]
		}
	}
	return nil
}

// Count reports how many rows have been pushed.
func (c *CovAccumulator) Count() int { return c.n }

// Width reports the row width.
func (c *CovAccumulator) Width() int { return c.m }

// Means returns the column averages of the pushed rows.
func (c *CovAccumulator) Means() ([]float64, error) {
	if c.n == 0 {
		return nil, ErrNoData
	}
	out := make([]float64, c.m)
	for j, s := range c.sums {
		out[j] = s / float64(c.n)
	}
	return out, nil
}

// Scatter returns the centered scatter matrix Xcᵗ·Xc (the paper's C,
// Eq. 2): cross-products minus N·avg[j]·avg[l]. Eigenvectors of the scatter
// matrix equal those of the covariance matrix; only the eigenvalue scale
// differs by the 1/(N−1) factor.
func (c *CovAccumulator) Scatter() (*matrix.Dense, error) {
	if c.n == 0 {
		return nil, ErrNoData
	}
	means, err := c.Means()
	if err != nil {
		return nil, err
	}
	out := matrix.NewDense(c.m, c.m)
	nf := float64(c.n)
	for j := 0; j < c.m; j++ {
		for l := j; l < c.m; l++ {
			v := c.cross.At(j, l) - nf*means[j]*means[l]
			out.Set(j, l, v)
			out.Set(l, j, v)
		}
	}
	return out, nil
}

// Covariance returns the sample covariance matrix Scatter()/(N−1).
// With a single row it returns ErrNoData since the sample covariance is
// undefined.
func (c *CovAccumulator) Covariance() (*matrix.Dense, error) {
	if c.n < 2 {
		return nil, fmt.Errorf("stats: covariance needs at least 2 rows, have %d: %w", c.n, ErrNoData)
	}
	s, err := c.Scatter()
	if err != nil {
		return nil, err
	}
	return matrix.Scale(1/float64(c.n-1), s), nil
}

// ScatterTwoPass computes the centered scatter matrix of x by first
// computing column means and then accumulating centered cross-products.
// It is the numerically safer textbook alternative to the paper's one-pass
// formula, retained as an ablation baseline and a test oracle.
func ScatterTwoPass(x *matrix.Dense) (*matrix.Dense, []float64) {
	n, m := x.Dims()
	means := x.ColMeans()
	out := matrix.NewDense(m, m)
	centered := make([]float64, m)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for j := range centered {
			centered[j] = row[j] - means[j]
		}
		for j := 0; j < m; j++ {
			cj := centered[j]
			if cj == 0 {
				continue
			}
			r := out.RawRow(j)
			for l := j; l < m; l++ {
				r[l] += cj * centered[l]
			}
		}
	}
	for j := 0; j < m; j++ {
		for l := j + 1; l < m; l++ {
			out.Set(l, j, out.At(j, l))
		}
	}
	return out, means
}

// ColStdDevs returns the per-column sample standard deviations of x.
// Columns of a matrix with fewer than two rows get 0.
func ColStdDevs(x *matrix.Dense) []float64 {
	n, m := x.Dims()
	out := make([]float64, m)
	if n < 2 {
		return out
	}
	scatter, _ := ScatterTwoPass(x)
	for j := 0; j < m; j++ {
		out[j] = math.Sqrt(scatter.At(j, j) / float64(n-1))
	}
	return out
}

// RMS returns the root-mean-square of the values, or 0 for an empty slice.
func RMS(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v * v
	}
	return math.Sqrt(s / float64(len(values)))
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// StdDev returns the sample standard deviation, or 0 with fewer than two
// values.
func StdDev(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	mu := Mean(values)
	var s float64
	for _, v := range values {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// ZScore returns (v − mean)/std, or 0 when std is 0.
func ZScore(v, mean, std float64) float64 {
	if std == 0 {
		return 0
	}
	return (v - mean) / std
}

// Median returns the middle value (average of the two middles for even
// lengths), or 0 for an empty slice. The input is not modified.
func Median(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return 0.5 * (sorted[n/2-1] + sorted[n/2])
}

// MADScale returns the median absolute deviation from the median, scaled
// by 1.4826 so it estimates the standard deviation for Gaussian data — a
// robust scale immune to a minority of wild values.
func MADScale(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	med := Median(values)
	dev := make([]float64, len(values))
	for i, v := range values {
		dev[i] = math.Abs(v - med)
	}
	return 1.4826 * Median(dev)
}
