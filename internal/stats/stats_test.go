package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ratiorules/internal/matrix"
)

func TestCovAccumulatorKnown(t *testing.T) {
	// Two columns: perfectly correlated y = 2x over x = 1, 2, 3.
	acc := NewCovAccumulator(2)
	for _, x := range []float64{1, 2, 3} {
		if err := acc.Push([]float64{x, 2 * x}); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Count() != 3 || acc.Width() != 2 {
		t.Fatalf("Count/Width = %d/%d, want 3/2", acc.Count(), acc.Width())
	}
	means, err := acc.Means()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(means, []float64{2, 4}, 1e-12) {
		t.Errorf("Means = %v, want [2 4]", means)
	}
	s, err := acc.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	// Centered x: -1, 0, 1 → Σx² = 2, Σxy = 4, Σy² = 8.
	want := matrix.MustFromRows([][]float64{{2, 4}, {4, 8}})
	if !matrix.EqualApprox(s, want, 1e-12) {
		t.Errorf("Scatter = %v, want %v", s, want)
	}
	cov, err := acc.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(cov, matrix.Scale(0.5, want), 1e-12) {
		t.Errorf("Covariance = %v", cov)
	}
}

func TestCovAccumulatorErrors(t *testing.T) {
	acc := NewCovAccumulator(3)
	if err := acc.Push([]float64{1, 2}); !errors.Is(err, ErrWidth) {
		t.Errorf("Push: err = %v, want ErrWidth", err)
	}
	if _, err := acc.Means(); !errors.Is(err, ErrNoData) {
		t.Errorf("Means: err = %v, want ErrNoData", err)
	}
	if _, err := acc.Scatter(); !errors.Is(err, ErrNoData) {
		t.Errorf("Scatter: err = %v, want ErrNoData", err)
	}
	if err := acc.Push([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Covariance(); !errors.Is(err, ErrNoData) {
		t.Errorf("Covariance with 1 row: err = %v, want ErrNoData", err)
	}
}

func TestNewCovAccumulatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative width must panic")
		}
	}()
	NewCovAccumulator(-1)
}

// Property: the paper's one-pass scatter equals the two-pass oracle.
func TestOnePassEqualsTwoPassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(40), 1+rng.Intn(8)
		x := matrix.NewDense(n, m)
		for i := 0; i < n; i++ {
			row := x.RawRow(i)
			for j := range row {
				// Offset means to exercise the N·avg·avg correction.
				row[j] = 100*float64(j) + 10*rng.NormFloat64()
			}
		}
		acc := NewCovAccumulator(m)
		for i := 0; i < n; i++ {
			if err := acc.Push(x.RawRow(i)); err != nil {
				return false
			}
		}
		onePass, err := acc.Scatter()
		if err != nil {
			return false
		}
		twoPass, means := ScatterTwoPass(x)
		accMeans, err := acc.Means()
		if err != nil {
			return false
		}
		if !matrix.EqualApproxVec(means, accMeans, 1e-9) {
			return false
		}
		return matrix.EqualApprox(onePass, twoPass, 1e-6*(1+twoPass.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: scatter matrices are symmetric positive semi-definite
// (checked via non-negative diagonal and Cauchy-Schwarz off-diagonals).
func TestScatterPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(20), 1+rng.Intn(6)
		acc := NewCovAccumulator(m)
		row := make([]float64, m)
		for i := 0; i < n; i++ {
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			if err := acc.Push(row); err != nil {
				return false
			}
		}
		s, err := acc.Scatter()
		if err != nil {
			return false
		}
		for j := 0; j < m; j++ {
			if s.At(j, j) < -1e-9 {
				return false
			}
			for l := j + 1; l < m; l++ {
				bound := math.Sqrt(s.At(j, j)*s.At(l, l)) + 1e-9
				if math.Abs(s.At(j, l)) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCovAccumulatorRejectsBadValues(t *testing.T) {
	acc := NewCovAccumulator(2)
	if err := acc.Push([]float64{1, math.NaN()}); !errors.Is(err, ErrBadValue) {
		t.Errorf("NaN: err = %v, want ErrBadValue", err)
	}
	if err := acc.Push([]float64{math.Inf(-1), 1}); !errors.Is(err, ErrBadValue) {
		t.Errorf("-Inf: err = %v, want ErrBadValue", err)
	}
	if acc.Count() != 0 {
		t.Errorf("rejected rows must not count: Count = %d", acc.Count())
	}
}

func TestMergeEqualsSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64(), float64(i)}
	}
	whole := NewCovAccumulator(3)
	a, b := NewCovAccumulator(3), NewCovAccumulator(3)
	for i, r := range rows {
		if err := whole.Push(r); err != nil {
			t.Fatal(err)
		}
		half := a
		if i >= 60 {
			half = b
		}
		if err := half.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	m1, err := whole.Means()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := a.Means()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(m1, m2, 1e-12) {
		t.Error("merged means differ")
	}
	s1, err := whole.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(s1, s2, 1e-9*(1+s1.MaxAbs())) {
		t.Error("merged scatter differs")
	}
}

func TestMergeWidthMismatch(t *testing.T) {
	a, b := NewCovAccumulator(2), NewCovAccumulator(3)
	if err := a.Merge(b); !errors.Is(err, ErrWidth) {
		t.Errorf("err = %v, want ErrWidth", err)
	}
}

func TestColStdDevs(t *testing.T) {
	x := matrix.MustFromRows([][]float64{{1, 10}, {2, 10}, {3, 10}})
	got := ColStdDevs(x)
	if math.Abs(got[0]-1) > 1e-12 {
		t.Errorf("std[0] = %v, want 1", got[0])
	}
	if got[1] != 0 {
		t.Errorf("std[1] = %v, want 0 (constant column)", got[1])
	}
	if got := ColStdDevs(matrix.NewDense(1, 2)); got[0] != 0 || got[1] != 0 {
		t.Errorf("single-row std = %v, want zeros", got)
	}
}

func TestRMS(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, -4}, math.Sqrt(12.5)},
		{[]float64{0, 0}, 0},
	}
	for _, tc := range tests {
		if got := RMS(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RMS(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMeanStdDevZScore(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := StdDev([]float64{2, 4}); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("StdDev = %v, want √2", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v, want 0", got)
	}
	if got := ZScore(5, 3, 2); got != 1 {
		t.Errorf("ZScore = %v, want 1", got)
	}
	if got := ZScore(5, 3, 0); got != 0 {
		t.Errorf("ZScore with zero std = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-1, -1, 10}, -1},
	}
	for _, tc := range tests {
		if got := Median(tc.in); got != tc.want {
			t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median must not modify its input")
	}
}

func TestMADScale(t *testing.T) {
	if got := MADScale(nil); got != 0 {
		t.Errorf("MADScale(nil) = %v", got)
	}
	// Symmetric data around 0 with |deviations| = {0,1,1,2,2}: MAD = 1.
	got := MADScale([]float64{-2, -1, 0, 1, 2})
	if math.Abs(got-1.4826) > 1e-12 {
		t.Errorf("MADScale = %v, want 1.4826", got)
	}
	// Robustness: one wild value barely moves it.
	clean := MADScale([]float64{1, 2, 3, 4, 5})
	dirty := MADScale([]float64{1, 2, 3, 4, 1e9})
	if dirty > 2*clean {
		t.Errorf("MADScale not robust: clean %v, dirty %v", clean, dirty)
	}
	// Approximates std for Gaussian data.
	rng := rand.New(rand.NewSource(33))
	big := make([]float64, 5000)
	for i := range big {
		big[i] = rng.NormFloat64() * 3
	}
	if got := MADScale(big); math.Abs(got-3) > 0.2 {
		t.Errorf("Gaussian MADScale = %v, want ≈ 3", got)
	}
}

func BenchmarkCovPush100Cols(b *testing.B) {
	acc := NewCovAccumulator(100)
	rng := rand.New(rand.NewSource(1))
	row := make([]float64, 100)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := acc.Push(row); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPushSparseEqualsDense(t *testing.T) {
	dense := NewCovAccumulator(4)
	sparse := NewCovAccumulator(4)
	rows := [][]float64{
		{1, 0, 2, 0},
		{0, 3, 0, 0},
		{5, 0, 0, 7},
	}
	for _, r := range rows {
		if err := dense.Push(r); err != nil {
			t.Fatal(err)
		}
		if err := sparse.PushSparse(matrix.SparsifyRow(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	sd, err := dense.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sparse.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(sd, ss, 1e-12) {
		t.Error("sparse scatter differs from dense")
	}
	md, _ := dense.Means()
	ms, _ := sparse.Means()
	if !matrix.EqualApproxVec(md, ms, 1e-12) {
		t.Error("sparse means differ from dense")
	}
}

func TestPushWeightedValidation(t *testing.T) {
	acc := NewCovAccumulator(2)
	if err := acc.PushWeighted([]float64{1, 2}, 0); !errors.Is(err, ErrBadValue) {
		t.Errorf("zero weight: err = %v, want ErrBadValue", err)
	}
	if err := acc.PushWeighted([]float64{1}, 1); !errors.Is(err, ErrWidth) {
		t.Errorf("short row: err = %v, want ErrWidth", err)
	}
	if err := acc.PushWeighted([]float64{1, math.NaN()}, 1); !errors.Is(err, ErrBadValue) {
		t.Errorf("NaN: err = %v, want ErrBadValue", err)
	}
}
