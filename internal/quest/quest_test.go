package quest

import (
	"errors"
	"io"
	"testing"

	"ratiorules/internal/matrix"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig(10)
	for name, mutate := range map[string]func(*Config){
		"negative rows":        func(c *Config) { c.Rows = -1 },
		"zero cols":            func(c *Config) { c.Cols = 0 },
		"zero patterns":        func(c *Config) { c.Patterns = 0 },
		"zero pattern len":     func(c *Config) { c.PatternLen = 0 },
		"pattern len too big":  func(c *Config) { c.PatternLen = c.Cols + 1 },
		"zero patterns/row":    func(c *Config) { c.PatternsPerRow = 0 },
		"non-positive amounts": func(c *Config) { c.MeanAmount = 0 },
	} {
		t.Run(name, func(t *testing.T) {
			c := base
			mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("want validation error, got nil")
			}
			if _, err := NewSource(c); err == nil {
				t.Error("NewSource must reject an invalid config")
			}
		})
	}
}

func TestSourceStreamsExactlyN(t *testing.T) {
	cfg := DefaultConfig(57)
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Width() != 100 {
		t.Fatalf("Width = %d, want 100", src.Width())
	}
	count := 0
	for {
		row, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(row) != 100 {
			t.Fatalf("row width %d", len(row))
		}
		for j, v := range row {
			if v < 0 {
				t.Fatalf("negative amount %v at column %d", v, j)
			}
		}
		count++
	}
	if count != 57 {
		t.Errorf("emitted %d rows, want 57", count)
	}
	if src.Emitted() != 57 {
		t.Errorf("Emitted() = %d, want 57", src.Emitted())
	}
	// Exhausted source keeps returning EOF.
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestSourceDeterministic(t *testing.T) {
	collect := func() *matrix.Dense {
		src, err := NewSource(DefaultConfig(30))
		if err != nil {
			t.Fatal(err)
		}
		out := matrix.NewDense(30, 100)
		for i := 0; ; i++ {
			row, err := src.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out.SetRow(i, row)
		}
		return out
	}
	if !matrix.EqualApprox(collect(), collect(), 0) {
		t.Error("same config must generate identical data")
	}
}

func TestSourceRowsAreCorrelated(t *testing.T) {
	// The bundles must induce real correlation structure: the top
	// eigenvalue of the covariance should carry far more than 1/M of the
	// energy. Checked indirectly via column cross-moments: at least one
	// off-diagonal correlation above 0.5.
	src, err := NewSource(DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	m := src.Width()
	sums := make([]float64, m)
	sq := make([]float64, m)
	cross := matrix.NewDense(m, m)
	n := 0
	for {
		row, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		for j, v := range row {
			sums[j] += v
			sq[j] += v * v
			if v == 0 {
				continue
			}
			r := cross.RawRow(j)
			for l := j + 1; l < m; l++ {
				r[l] += v * row[l]
			}
		}
	}
	nf := float64(n)
	best := 0.0
	for j := 0; j < m; j++ {
		varJ := sq[j]/nf - (sums[j]/nf)*(sums[j]/nf)
		for l := j + 1; l < m; l++ {
			varL := sq[l]/nf - (sums[l]/nf)*(sums[l]/nf)
			if varJ <= 0 || varL <= 0 {
				continue
			}
			cov := cross.At(j, l)/nf - (sums[j]/nf)*(sums[l]/nf)
			if r := cov / (sqrt(varJ) * sqrt(varL)); r > best {
				best = r
			}
		}
	}
	if best < 0.5 {
		t.Errorf("max pairwise correlation %v, want >= 0.5 from bundle structure", best)
	}
}

func TestZeroRowSource(t *testing.T) {
	src, err := NewSource(DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want immediate io.EOF", err)
	}
}

func sqrt(v float64) float64 {
	// Tiny wrapper so the test reads cleanly without importing math twice.
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

func BenchmarkSourceNext(b *testing.B) {
	src, err := NewSource(DefaultConfig(1 << 30))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSparseSourceMatchesDense(t *testing.T) {
	cfg := DefaultConfig(40)
	dense, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Width() != dense.Width() {
		t.Fatalf("widths differ: %d vs %d", sparse.Width(), dense.Width())
	}
	for {
		drow, derr := dense.Next()
		srow, serr := sparse.NextSparse()
		if errors.Is(derr, io.EOF) {
			if !errors.Is(serr, io.EOF) {
				t.Fatal("sparse source outlived dense source")
			}
			return
		}
		if derr != nil || serr != nil {
			t.Fatalf("errs: %v / %v", derr, serr)
		}
		got := srow.ToDense()
		for j := range drow {
			if got[j] != drow[j] {
				t.Fatalf("column %d: sparse %v vs dense %v", j, got[j], drow[j])
			}
		}
	}
}

func TestNewSparseSourceRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Cols = 0
	if _, err := NewSparseSource(cfg); err == nil {
		t.Error("invalid config must fail")
	}
}
