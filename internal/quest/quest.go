// Package quest is a synthetic market-basket data generator in the spirit
// of the IBM Quest Synthetic Data Generation Tool, which the paper uses for
// its scale-up experiment (Fig. 8: a 100,000 × 100 data matrix).
//
// The original tool (and its download URL) is long gone, so this package
// re-implements the behaviour the experiment depends on: a stream of
// customer rows over M products where each customer draws a handful of
// "patterns" (correlated product bundles) and spends log-normally
// distributed dollar amounts on the bundle's products. The result is a
// sparse, positively correlated amounts matrix whose rows can be streamed
// one at a time — exactly what a single-pass mining scale-up needs.
package quest

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"ratiorules/internal/matrix"
)

// Config parameterizes the generator. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// Rows is the number of customers N.
	Rows int
	// Cols is the number of products M.
	Cols int
	// Patterns is the number of latent product bundles (Quest's
	// "potentially large itemsets").
	Patterns int
	// PatternLen is the average bundle size in products.
	PatternLen int
	// PatternsPerRow is the average number of bundles a customer buys.
	PatternsPerRow float64
	// MeanAmount is the average dollar amount per purchased product.
	MeanAmount float64
	// Seed fixes the generated data.
	Seed int64
}

// DefaultConfig mirrors the paper's scale-up setting: M=100 products with
// bundle structure, dollar amounts.
func DefaultConfig(rows int) Config {
	return Config{
		Rows:           rows,
		Cols:           100,
		Patterns:       25,
		PatternLen:     6,
		PatternsPerRow: 2.5,
		MeanAmount:     12,
		Seed:           98,
	}
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.Rows < 0:
		return fmt.Errorf("quest: negative rows %d", c.Rows)
	case c.Cols < 1:
		return fmt.Errorf("quest: cols %d must be positive", c.Cols)
	case c.Patterns < 1:
		return fmt.Errorf("quest: patterns %d must be positive", c.Patterns)
	case c.PatternLen < 1 || c.PatternLen > c.Cols:
		return fmt.Errorf("quest: pattern length %d outside [1, %d]", c.PatternLen, c.Cols)
	case c.PatternsPerRow <= 0:
		return fmt.Errorf("quest: patterns per row %v must be positive", c.PatternsPerRow)
	case c.MeanAmount <= 0:
		return fmt.Errorf("quest: mean amount %v must be positive", c.MeanAmount)
	}
	return nil
}

// pattern is a product bundle with per-product weight (relative spend) and
// a popularity that biases which bundles customers pick.
type pattern struct {
	products []int
	weights  []float64
	cum      float64 // cumulative popularity for roulette selection
}

// Source streams the rows of a synthetic basket matrix. It implements the
// miner's RowSource contract (Width/Next) without ever materializing the
// full matrix, so the Fig. 8 scale-up measures I/O-free generation plus
// single-pass accumulation only.
type Source struct {
	cfg      Config
	rng      *rand.Rand
	patterns []pattern
	row      []float64
	emitted  int
}

// NewSource builds the latent bundles and returns a streaming source.
func NewSource(cfg Config) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pats := make([]pattern, cfg.Patterns)
	var cum float64
	for i := range pats {
		// Bundle size: Poisson-ish around PatternLen, at least 1.
		size := maxInt(1, int(float64(cfg.PatternLen)*(0.5+rng.Float64())))
		if size > cfg.Cols {
			size = cfg.Cols
		}
		prods := rng.Perm(cfg.Cols)[:size]
		weights := make([]float64, size)
		for j := range weights {
			// Relative spend within the bundle: the "ratio" the rules later
			// recover.
			weights[j] = 0.3 + rng.Float64()*1.7
		}
		// Exponentially skewed popularity, like Quest's weighted itemsets.
		cum += rng.ExpFloat64() + 0.1
		pats[i] = pattern{products: prods, weights: weights, cum: cum}
	}
	return &Source{
		cfg:      cfg,
		rng:      rng,
		patterns: pats,
		row:      make([]float64, cfg.Cols),
	}, nil
}

// Width implements the row-source contract.
func (s *Source) Width() int { return s.cfg.Cols }

// Next generates the next customer row, reusing an internal buffer.
// It returns io.EOF after Rows rows.
func (s *Source) Next() ([]float64, error) {
	if s.emitted >= s.cfg.Rows {
		return nil, io.EOF
	}
	s.emitted++
	for j := range s.row {
		s.row[j] = 0
	}
	// Number of bundles for this customer: geometric-ish around the mean.
	n := 1 + s.rng.Intn(int(2*s.cfg.PatternsPerRow))
	total := s.patterns[len(s.patterns)-1].cum
	for b := 0; b < n; b++ {
		p := s.pick(total)
		// Bundle intensity: how big this purchase is overall.
		intensity := s.cfg.MeanAmount * math.Exp(0.5*s.rng.NormFloat64())
		for i, prod := range p.products {
			// Per-product corruption: occasionally skip a product, like
			// Quest's corruption levels.
			if s.rng.Float64() < 0.1 {
				continue
			}
			s.row[prod] += intensity * p.weights[i] * (1 + 0.05*s.rng.NormFloat64())
		}
	}
	// Background noise purchases.
	for b := 0; b < 2; b++ {
		j := s.rng.Intn(s.cfg.Cols)
		s.row[j] += s.cfg.MeanAmount * 0.2 * s.rng.Float64()
	}
	for j, v := range s.row {
		if v < 0 {
			s.row[j] = 0
		}
	}
	return s.row, nil
}

// pick roulette-selects a pattern by popularity.
func (s *Source) pick(total float64) *pattern {
	r := s.rng.Float64() * total
	for i := range s.patterns {
		if r <= s.patterns[i].cum {
			return &s.patterns[i]
		}
	}
	return &s.patterns[len(s.patterns)-1]
}

// Emitted reports how many rows have been generated so far.
func (s *Source) Emitted() int { return s.emitted }

// SparseSource wraps a Source to emit rows in sparse form, for the sparse
// single-pass miner. Basket rows are naturally sparse — a customer buys a
// few bundles out of M products — so the conversion threshold is exact
// zero.
type SparseSource struct {
	src *Source
	idx []int
	val []float64
}

// NewSparseSource builds a sparse-row generator with the same behaviour
// (and, for a given config, the same data) as NewSource.
func NewSparseSource(cfg Config) (*SparseSource, error) {
	src, err := NewSource(cfg)
	if err != nil {
		return nil, err
	}
	return &SparseSource{
		src: src,
		idx: make([]int, 0, cfg.Cols),
		val: make([]float64, 0, cfg.Cols),
	}, nil
}

// Width implements the sparse row-source contract.
func (s *SparseSource) Width() int { return s.src.Width() }

// NextSparse returns the next customer row in sparse form, reusing
// internal buffers, or io.EOF.
func (s *SparseSource) NextSparse() (matrix.SparseVec, error) {
	row, err := s.src.Next()
	if err != nil {
		return matrix.SparseVec{}, err
	}
	s.idx = s.idx[:0]
	s.val = s.val[:0]
	for j, v := range row {
		if v != 0 {
			s.idx = append(s.idx, j)
			s.val = append(s.val, v)
		}
	}
	return matrix.SparseVec{Len: len(row), Idx: s.idx, Val: s.val}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
