// Package online closes the loop between ingest and serving: it owns a
// mutex-guarded core.StreamMiner per model name, accumulates rows pushed
// over HTTP (POST /v1/rules/{name}/ingest), and continuously re-derives
// Ratio Rules from the live sufficient statistics — the paper's
// single-pass algorithm (Fig. 2) run as a resident process instead of a
// one-shot batch job.
//
// Publication is gated on the paper's own quality measure: the manager
// keeps a reservoir-sampled holdout of ingested rows, and a re-mined
// candidate is promoted to the model store only when its guessing error
// GE₁ (Def. 1) does not regress beyond a configurable slack relative to
// the currently served version. Candidates that regress are counted,
// logged, and dropped; the served model never silently degrades because
// a burst of junk rows arrived.
//
// Republishing triggers on a row-count threshold (Config.RepublishRows),
// on a wall-clock interval (Config.RepublishEvery) once Start has been
// called, or explicitly via Republish. Stream state survives restarts:
// each stream's sufficient statistics, reservoir and gate counters are
// checkpointed into Config.CheckpointDir (atomic tmp+rename writes) on
// Close and every Config.CheckpointEvery republishes, and NewManager
// reloads whatever checkpoints it finds, so a crash-recovered server
// resumes accumulating instead of restarting from zero.
//
// Everything is observable: rr_online_* metrics (see metrics.go) and
// online.ingest.row / online.republish / online.ge_gate trace spans
// through the obs and obs/trace layers.
package online

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/alert"
	"ratiorules/internal/obs/trace"
)

// ModelStore is where promoted models go — satisfied by server.Registry,
// so promotions flow through the same versioned, journaled PutContext
// path as every other mutation (ETags advance, rollback applies).
type ModelStore interface {
	Put(ctx context.Context, name string, rules *core.Rules) (int, error)
	GetWithVersion(name string) (*core.Rules, int, bool)
}

// Sentinel errors mapped to HTTP envelope codes by internal/server.
var (
	// ErrDecayConflict marks an ingest that requested a decay different
	// from the one the existing stream was created with (HTTP 409).
	ErrDecayConflict = errors.New("online: stream exists with a different decay")
	// ErrNoStream marks operations on a model with no live stream.
	ErrNoStream = errors.New("online: no stream for model")
)

// Defaults for Config zero values.
const (
	// DefaultRepublishRows is the row-count republish trigger.
	DefaultRepublishRows = 256
	// DefaultGESlack is the allowed relative GE₁ regression: a candidate
	// is promoted when candGE <= servedGE * (1 + slack).
	DefaultGESlack = 0.05
	// DefaultReservoirSize is the holdout reservoir capacity in rows.
	DefaultReservoirSize = 256
	// DefaultCheckpointEvery is how many republishes pass between
	// checkpoint writes (checkpoints also happen on Close).
	DefaultCheckpointEvery = 8
)

// Config tunes a Manager. The zero value selects the defaults above
// with no interval trigger, no checkpointing, and silent observability.
type Config struct {
	// RepublishRows re-mines a stream once this many rows accumulated
	// since its last republish; <= 0 selects DefaultRepublishRows.
	RepublishRows int
	// RepublishEvery re-mines every dirty stream on this interval once
	// Start has been called; 0 disables the interval trigger.
	RepublishEvery time.Duration
	// GESlack is the allowed relative GE₁ regression before the gate
	// rejects a candidate; < 0 selects DefaultGESlack (0 is honored:
	// any regression rejects).
	GESlack float64
	// ReservoirSize caps the holdout reservoir; <= 0 selects
	// DefaultReservoirSize.
	ReservoirSize int
	// CheckpointEvery writes a stream checkpoint every N republishes;
	// <= 0 selects DefaultCheckpointEvery. Ignored without CheckpointDir.
	CheckpointEvery int
	// CheckpointDir is where stream checkpoints live; "" disables
	// durable stream state.
	CheckpointDir string
	// Seed makes reservoir sampling reproducible (per-stream RNGs are
	// derived from it and the model name).
	Seed int64
	// Logger receives promotion/rejection/checkpoint lines; nil is
	// silent.
	Logger *slog.Logger
	// Metrics receives the rr_online_* families; nil selects
	// obs.Default().
	Metrics *obs.Registry
	// Tracer roots online.republish spans for background republishes
	// that have no request trace to join; nil leaves them untraced.
	Tracer *trace.Tracer

	// GEEvalEvery re-scores every stream's served model against its
	// current reservoir on this interval once Start has been called,
	// keeping the GE time series moving between republishes; 0 disables
	// the tick (gate decisions still record samples).
	GEEvalEvery time.Duration
	// GEHistorySize caps the per-stream GE sample ring; <= 0 selects
	// DefaultGEHistorySize.
	GEHistorySize int
	// Alerts evaluates quality rules after every GE sample; nil builds
	// an engine with alert.DefaultRules on Metrics/Logger.
	Alerts *alert.Engine
	// AutoRollback lets a firing sustained-regression alert restore the
	// best prior version (see monitor.go). Off by default.
	AutoRollback bool
	// RollbackMargin is the relative GE improvement a prior version
	// must show before auto-rollback prefers it; <= 0 selects
	// DefaultRollbackMargin.
	RollbackMargin float64
	// RollbackCooldown spaces auto-rollbacks of one stream; <= 0
	// selects DefaultRollbackCooldown.
	RollbackCooldown time.Duration
	// GateWorkers caps the row-parallelism of holdout GE evaluations
	// (the dominant republish cost); <= 0 selects GOMAXPROCS.
	GateWorkers int
}

// withDefaults normalizes the zero values.
func (c Config) withDefaults() Config {
	if c.RepublishRows <= 0 {
		c.RepublishRows = DefaultRepublishRows
	}
	if c.GESlack < 0 {
		c.GESlack = DefaultGESlack
	}
	if c.ReservoirSize <= 0 {
		c.ReservoirSize = DefaultReservoirSize
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = DefaultCheckpointEvery
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.GEHistorySize <= 0 {
		c.GEHistorySize = DefaultGEHistorySize
	}
	if c.RollbackMargin <= 0 {
		c.RollbackMargin = DefaultRollbackMargin
	}
	if c.RollbackCooldown <= 0 {
		c.RollbackCooldown = DefaultRollbackCooldown
	}
	return c
}

// Manager owns the live streams and the republish/promotion machinery.
// Construct with NewManager; safe for concurrent use.
type Manager struct {
	cfg   Config
	store ModelStore
	met   *onlineMetrics

	mu      sync.Mutex
	streams map[string]*Stream
	started bool
	closed  bool

	wake chan string
	done chan struct{}
	wg   sync.WaitGroup
}

// NewManager builds a manager over the model store, reloading any stream
// checkpoints found in cfg.CheckpointDir (corrupt checkpoint files are
// logged and skipped — a half-written checkpoint must not take the
// server down). The returned manager accepts ingest immediately;
// row-count republish triggers fire synchronously until Start launches
// the background republisher.
func NewManager(store ModelStore, cfg Config) (*Manager, error) {
	if store == nil {
		return nil, errors.New("online: nil model store")
	}
	cfg = cfg.withDefaults()
	if cfg.Alerts == nil {
		eng, err := alert.NewEngine(alert.Config{
			Rules:   alert.DefaultRules(),
			Metrics: cfg.Metrics,
			Logger:  cfg.Logger,
		})
		if err != nil {
			return nil, err
		}
		cfg.Alerts = eng
	}
	m := &Manager{
		cfg:     cfg,
		store:   store,
		met:     newOnlineMetrics(cfg.Metrics),
		streams: make(map[string]*Stream),
		wake:    make(chan string, 64),
		done:    make(chan struct{}),
	}
	if cfg.CheckpointDir != "" {
		if err := m.loadCheckpoints(); err != nil {
			return nil, err
		}
	}
	m.met.streams.Set(float64(len(m.streams)))
	return m, nil
}

// Start launches the background republisher: it drains row-count wake
// requests and, when Config.RepublishEvery is set, re-mines every dirty
// stream on that interval. Idempotent; Close stops it.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started || m.closed {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	m.wg.Add(1)
	go m.loop()
}

func (m *Manager) loop() {
	defer m.wg.Done()
	var tickC <-chan time.Time
	if m.cfg.RepublishEvery > 0 {
		tick := time.NewTicker(m.cfg.RepublishEvery)
		defer tick.Stop()
		tickC = tick.C
	}
	var geTickC <-chan time.Time
	if m.cfg.GEEvalEvery > 0 {
		geTick := time.NewTicker(m.cfg.GEEvalEvery)
		defer geTick.Stop()
		geTickC = geTick.C
	}
	for {
		select {
		case <-m.done:
			return
		case name := <-m.wake:
			// A queued wake may be stale (an earlier republish already
			// consumed the pending rows); republishIfDirty makes the
			// duplicate a no-op instead of an empty republish.
			m.republishIfDirty(context.Background(), name)
		case <-tickC:
			for _, name := range m.Names() {
				m.republishIfDirty(context.Background(), name)
			}
		case <-geTickC:
			m.evalAll(context.Background())
		}
	}
}

// Close stops the background republisher and checkpoints every stream.
// The manager rejects no further ingest (streams stay readable); Close
// is idempotent and returns the first checkpoint error.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	started := m.started
	m.mu.Unlock()
	close(m.done)
	if started {
		m.wg.Wait()
	}
	return m.CheckpointAll()
}

// Names lists the live stream names, sorted.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.streams))
	for n := range m.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stream fetches or creates the live stream for a model. A new stream
// takes the given decay; an existing stream keeps its own, and the call
// fails with ErrDecayConflict when explicitDecay demands a different
// one (clients that omit the decay parameter join whatever is running).
func (m *Manager) Stream(name string, decay float64, explicitDecay bool) (*Stream, error) {
	if name == "" {
		return nil, errors.New("online: empty model name")
	}
	if decay < 0 || decay >= 1 {
		return nil, fmt.Errorf("online: decay %v outside [0, 1)", decay)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.streams[name]; ok {
		if explicitDecay && st.decay != decay {
			return nil, fmt.Errorf("%w: stream %q runs decay %v, requested %v",
				ErrDecayConflict, name, st.decay, decay)
		}
		return st, nil
	}
	st := m.newStream(name, decay)
	m.streams[name] = st
	m.met.streams.Set(float64(len(m.streams)))
	return st, nil
}

// newStream builds an empty stream; callers hold m.mu.
func (m *Manager) newStream(name string, decay float64) *Stream {
	return &Stream{
		mgr:       m,
		name:      name,
		decay:     decay,
		rng:       rand.New(rand.NewSource(streamSeed(m.cfg.Seed, name))),
		versionGE: make(map[int]float64),
	}
}

// streamSeed derives a per-stream RNG seed from the configured seed and
// the model name, so reservoir sampling is reproducible per model.
func streamSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// lookup returns the live stream or nil.
func (m *Manager) lookup(name string) *Stream {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.streams[name]
}

// Drop removes a model's stream and its checkpoint file, reporting
// whether a stream existed. Served model versions are untouched.
func (m *Manager) Drop(name string) bool {
	m.mu.Lock()
	st, ok := m.streams[name]
	delete(m.streams, name)
	m.met.streams.Set(float64(len(m.streams)))
	m.mu.Unlock()
	if ok {
		st.mu.Lock()
		m.met.reservoir.Add(-float64(len(st.reservoir)))
		st.mu.Unlock()
		m.removeCheckpoint(name)
		if m.cfg.Alerts != nil {
			m.cfg.Alerts.Drop(name)
		}
	}
	return ok
}

// StreamStatus is the externally visible state of one live stream
// (GET /v1/rules/{name}/stream).
type StreamStatus struct {
	Name          string  `json:"name"`
	Width         int     `json:"width"` // 0 until the first row arrives
	Decay         float64 `json:"decay"`
	Rows          int     `json:"rows"`
	Pending       int     `json:"pending"` // rows since the last republish
	ReservoirRows int     `json:"reservoir_rows"`
	Republishes   int     `json:"republishes"`
	Promotions    int     `json:"promotions"`
	Rejections    int     `json:"rejections"`
	LastVersion   int     `json:"last_version,omitempty"` // last promoted store version
	LastCandGE    float64 `json:"last_candidate_ge,omitempty"`
	LastServedGE  float64 `json:"last_served_ge,omitempty"`
}

// Status reports a stream's state, or ok=false without one.
func (m *Manager) Status(name string) (StreamStatus, bool) {
	st := m.lookup(name)
	if st == nil {
		return StreamStatus{}, false
	}
	return st.status(), true
}

// Stream is one model's live accumulator: the mutex-guarded StreamMiner,
// the holdout reservoir, and the gate counters. Obtain from
// Manager.Stream; safe for concurrent use.
type Stream struct {
	mgr   *Manager
	name  string
	decay float64

	mu        sync.Mutex
	sm        *core.StreamMiner // nil until the first row fixes the width
	reservoir [][]float64       // holdout rows (owned copies)
	seen      int               // rows offered to the reservoir, ever
	rng       *rand.Rand
	pending   int // rows since the last republish

	republishes  int
	promotions   int
	rejections   int
	sinceCkpt    int // republishes since the last checkpoint write
	lastVersion  int
	lastCandGE   float64
	lastServedGE float64

	// Quality monitoring (monitor.go): the bounded served-GE series,
	// trailing gate outcomes, per-version GE annotations for the
	// auto-rollback candidate search, and the rollback flap gate.
	geHistory     []GESample
	outcomes      []bool
	versionGE     map[int]float64
	geEps         float64 // noise floor for relative alert thresholds
	autoRollbacks int
	lastRollback  time.Time
}

// Push folds one row into the stream and the holdout reservoir,
// returning the total row count. The first row fixes the stream width;
// later rows of a different width fail with core.ErrWidth. Crossing the
// row-count threshold hands the stream to the background republisher
// (or republishes synchronously when Start was never called, so
// embedded managers still make progress).
func (s *Stream) Push(ctx context.Context, row []float64) (int, error) {
	_, sp := trace.Start(ctx, "online.ingest.row")
	count, trigger, err := s.push(row)
	if sp != nil {
		sp.SetAttr("model", s.name)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	if err != nil {
		s.mgr.met.rows.With("error").Inc()
		return count, err
	}
	s.mgr.met.rows.With("ok").Inc()
	if trigger {
		s.mgr.triggerRepublish(ctx, s.name)
	}
	return count, nil
}

// push does the locked part of Push, reporting whether the row-count
// republish trigger fired.
func (s *Stream) push(row []float64) (count int, trigger bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sm == nil {
		sm, err := core.NewStreamMiner(len(row), s.decay)
		if err != nil {
			return 0, false, err
		}
		s.sm = sm
	}
	if err := s.sm.Push(row); err != nil {
		return s.sm.Count(), false, err
	}
	s.reservoirOffer(row)
	s.pending++
	return s.sm.Count(), s.pending >= s.mgr.cfg.RepublishRows, nil
}

// reservoirOffer runs one step of Vitter's Algorithm R: the first
// ReservoirSize rows fill the holdout, after which row i replaces a
// random slot with probability size/i — leaving a uniform sample of
// everything ever ingested, which is what makes GE on the holdout an
// honest estimate rather than a recency-biased one. Callers hold s.mu.
// The reservoir gauge aggregates across streams (model names never
// become metric labels — unbounded cardinality).
func (s *Stream) reservoirOffer(row []float64) {
	s.seen++
	size := s.mgr.cfg.ReservoirSize
	if len(s.reservoir) < size {
		s.reservoir = append(s.reservoir, append([]float64(nil), row...))
		s.mgr.met.reservoir.Inc()
	} else if j := s.rng.Intn(s.seen); j < size {
		s.reservoir[j] = append([]float64(nil), row...)
	}
}

// status snapshots the stream under its lock.
func (s *Stream) status() StreamStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StreamStatus{
		Name:          s.name,
		Decay:         s.decay,
		Pending:       s.pending,
		ReservoirRows: len(s.reservoir),
		Republishes:   s.republishes,
		Promotions:    s.promotions,
		Rejections:    s.rejections,
		LastVersion:   s.lastVersion,
		LastCandGE:    s.lastCandGE,
		LastServedGE:  s.lastServedGE,
	}
	if s.sm != nil {
		st.Width = s.sm.Width()
		st.Rows = s.sm.Count()
	}
	return st
}

// triggerRepublish routes a row-count trigger: to the background loop
// when it runs (never blocking the ingest hot path — a full wake queue
// drops the request, and the still-pending rows re-fire it on the next
// row), synchronously otherwise.
func (m *Manager) triggerRepublish(ctx context.Context, name string) {
	m.mu.Lock()
	started := m.started && !m.closed
	m.mu.Unlock()
	if started {
		select {
		case m.wake <- name:
		default:
		}
		return
	}
	m.republishIfDirty(ctx, name)
}

// republishIfDirty republishes only when rows arrived since the last
// republish, absorbing duplicate wake requests.
func (m *Manager) republishIfDirty(ctx context.Context, name string) {
	st := m.lookup(name)
	if st == nil {
		return
	}
	st.mu.Lock()
	dirty := st.pending > 0
	st.mu.Unlock()
	if !dirty {
		return
	}
	if _, err := m.Republish(ctx, name); err != nil && !errors.Is(err, errTooFewRows) {
		m.cfg.Logger.Warn("online republish failed", "model", name, "err", err)
	}
}

// errTooFewRows marks a republish attempt before the stream can mine.
var errTooFewRows = errors.New("online: too few rows to mine")

// RepublishResult reports one republish attempt.
type RepublishResult struct {
	// Promoted is true when the candidate passed the GE gate and was
	// written to the model store as Version.
	Promoted bool `json:"promoted"`
	// Version is the store version of the promoted model (0 when the
	// candidate was rejected).
	Version int `json:"version,omitempty"`
	// CandidateGE and ServedGE are the gate inputs: GE₁ of the re-mined
	// candidate and of the currently served model on the holdout.
	// ServedGE is 0 when nothing was served yet.
	CandidateGE float64 `json:"candidate_ge"`
	ServedGE    float64 `json:"served_ge"`
	// Reason explains the decision ("first_publish", "ge_ok",
	// "ge_regressed", "width_changed").
	Reason string `json:"reason"`
}

// Republish re-mines a stream's rules and runs the GE gate: the
// candidate is promoted to the model store only when its GE₁ on the
// holdout does not exceed the served model's by more than the
// configured slack. The eigensolve runs on a point-in-time copy of the
// sufficient statistics, so ingest keeps flowing while it solves.
func (m *Manager) Republish(ctx context.Context, name string) (RepublishResult, error) {
	ctx, sp := trace.Start(ctx, "online.republish")
	if sp == nil && m.cfg.Tracer != nil {
		// Background republishes have no request trace to join; root a
		// fresh one so the flight recorder still sees them.
		ctx, sp = m.cfg.Tracer.StartRoot(ctx, "online.republish", trace.SpanContext{})
	}
	start := time.Now()
	res, err := m.republish(ctx, name)
	elapsed := time.Since(start)
	m.met.republishSeconds.Observe(elapsed.Seconds())
	switch {
	case errors.Is(err, errTooFewRows):
		m.met.republishes.With("skipped").Inc()
	case err != nil:
		m.met.republishes.With("error").Inc()
	case res.Promoted:
		m.met.republishes.With("promoted").Inc()
	default:
		m.met.republishes.With("rejected").Inc()
	}
	if sp != nil {
		sp.SetAttr("model", name)
		sp.SetAttr("promoted", err == nil && res.Promoted)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return res, err
}

func (m *Manager) republish(ctx context.Context, name string) (RepublishResult, error) {
	st := m.lookup(name)
	if st == nil {
		return RepublishResult{}, fmt.Errorf("%w: %q", ErrNoStream, name)
	}

	// Snapshot under the stream lock: Save is O(M²), the eigensolve
	// below is O(M³) and runs on the copy, so pushes stall only for the
	// cheap part. The reservoir slice header is copied; rows are
	// immutable once sampled (offer stores fresh copies), so sharing
	// them with a concurrent replacement is safe — the holdout is
	// simply the sample as of this instant.
	st.mu.Lock()
	if st.sm == nil || st.sm.Count() < 2 {
		count := 0
		if st.sm != nil {
			count = st.sm.Count()
		}
		st.mu.Unlock()
		return RepublishResult{}, fmt.Errorf("%w: %q has %d rows", errTooFewRows, name, count)
	}
	var buf bytes.Buffer
	if err := st.sm.Save(&buf); err != nil {
		st.mu.Unlock()
		return RepublishResult{}, fmt.Errorf("online: snapshotting stream %q: %w", name, err)
	}
	holdout := append([][]float64(nil), st.reservoir...)
	st.pending = 0
	st.republishes++
	st.mu.Unlock()

	clone, err := core.LoadStreamMiner(&buf)
	if err != nil {
		return RepublishResult{}, fmt.Errorf("online: cloning stream %q: %w", name, err)
	}
	candidate, err := clone.Rules()
	if err != nil {
		return RepublishResult{}, fmt.Errorf("online: mining stream %q: %w", name, err)
	}

	res, err := m.geGate(ctx, name, candidate, holdout)
	if err != nil {
		return res, err
	}

	if res.Promoted {
		version, err := m.store.Put(ctx, name, candidate)
		if err != nil {
			return RepublishResult{}, fmt.Errorf("online: promoting %q: %w", name, err)
		}
		res.Version = version
		m.met.promotions.Inc()
		m.cfg.Logger.Info("online model promoted",
			"model", name, "version", version, "reason", res.Reason,
			"candidate_ge", res.CandidateGE, "served_ge", res.ServedGE,
			"rows", candidate.TrainedRows(), "holdout", len(holdout))
	} else {
		m.met.rejections.Inc()
		m.cfg.Logger.Warn("online candidate rejected by GE gate",
			"model", name, "reason", res.Reason,
			"candidate_ge", res.CandidateGE, "served_ge", res.ServedGE,
			"slack", m.cfg.GESlack, "holdout", len(holdout))
	}

	// Gate decisions with real GE numbers feed the quality series;
	// first_publish and width_changed promote without a comparable
	// baseline (their GEs are zero), so the eval tick fills those in.
	measured := res.Reason == "ge_ok" || res.Reason == "ge_regressed"

	st.mu.Lock()
	if res.Promoted {
		st.promotions++
		st.lastVersion = res.Version
	} else {
		st.rejections++
	}
	st.lastCandGE = res.CandidateGE
	st.lastServedGE = res.ServedGE
	if measured {
		st.recordGateSample(res, rmsScale(holdout)*1e-9, m.cfg.GEHistorySize)
	}
	st.sinceCkpt++
	ckpt := m.cfg.CheckpointDir != "" && st.sinceCkpt >= m.cfg.CheckpointEvery
	if ckpt {
		st.sinceCkpt = 0
	}
	st.mu.Unlock()
	if res.Promoted && measured {
		m.annotateVersionGE(name, res.Version, res.CandidateGE)
	}
	if measured {
		m.runAlerts(ctx, name)
	}
	if ckpt {
		m.checkpointLogged(st)
	}
	return res, nil
}

// geGate decides promotion: compare the candidate's GE₁ on the holdout
// against the served model's. No served model, or a served model of a
// different width (the stream was re-created with a new schema), always
// promotes — there is no comparable baseline to defend.
func (m *Manager) geGate(ctx context.Context, name string, candidate *core.Rules, holdout [][]float64) (RepublishResult, error) {
	_, sp := trace.Start(ctx, "online.ge_gate")
	start := time.Now()
	defer func() {
		m.met.geGateSeconds.Observe(time.Since(start).Seconds())
		if sp != nil {
			sp.SetAttr("model", name)
			sp.SetAttr("holdout_rows", len(holdout))
			sp.End()
		}
	}()

	served, _, ok := m.store.GetWithVersion(name)
	if !ok {
		return RepublishResult{Promoted: true, Reason: "first_publish"}, nil
	}
	if served.Width() != candidate.Width() {
		return RepublishResult{Promoted: true, Reason: "width_changed"}, nil
	}

	test, err := matrix.FromRows(holdout)
	if err != nil {
		return RepublishResult{}, fmt.Errorf("online: building holdout for %q: %w", name, err)
	}
	geOpts := core.GEOptions{Workers: m.cfg.GateWorkers}
	candGE, err := core.GE1With(candidate, test, geOpts)
	if err != nil {
		return RepublishResult{}, fmt.Errorf("online: candidate GE for %q: %w", name, err)
	}
	servedGE, err := core.GE1With(served, test, geOpts)
	if err != nil {
		return RepublishResult{}, fmt.Errorf("online: served GE for %q: %w", name, err)
	}
	m.met.ge.With("candidate").Set(candGE)
	m.met.ge.With("served").Set(servedGE)

	// The epsilon floor keeps eigensolve round-off from tripping the
	// gate: on perfectly ratio-structured data both GEs sit at ~1e-16
	// of the cell magnitude, and a relative slack on a served GE of
	// exactly zero would reject that noise.
	eps := rmsScale(holdout) * 1e-9
	res := RepublishResult{CandidateGE: candGE, ServedGE: servedGE}
	if candGE <= servedGE*(1+m.cfg.GESlack)+eps {
		res.Promoted = true
		res.Reason = "ge_ok"
	} else {
		res.Reason = "ge_regressed"
	}
	return res, nil
}

// rmsScale is the root-mean-square magnitude of the holdout cells —
// the natural unit GE values are measured in.
func rmsScale(rows [][]float64) float64 {
	var sum float64
	n := 0
	for _, row := range rows {
		for _, v := range row {
			sum += v * v
		}
		n += len(row)
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}
