package online

import "ratiorules/internal/obs"

// onlineMetrics is the rr_online_* family set. Label cardinality stays
// bounded: result enums and the candidate/served role only, never model
// names (per-model state is at GET /v1/rules/{name}/stream instead).
type onlineMetrics struct {
	rows             *obs.CounterVec // result: ok|error
	streams          *obs.Gauge
	reservoir        *obs.Gauge
	republishes      *obs.CounterVec // result: promoted|rejected|skipped|error
	republishSeconds *obs.Histogram
	geGateSeconds    *obs.Histogram
	rejections       *obs.Counter
	promotions       *obs.Counter
	checkpoints      *obs.CounterVec // result: ok|error
	ge               *obs.GaugeVec   // role: candidate|served
	geEvals          *obs.CounterVec // result: ok|error
	geEvalSeconds    *obs.Histogram
	autoRollbacks    *obs.Counter
}

func newOnlineMetrics(reg *obs.Registry) *onlineMetrics {
	return &onlineMetrics{
		rows: reg.CounterVec("rr_online_rows_ingested_total",
			"Rows pushed into live streams by per-row result.", "result"),
		streams: reg.Gauge("rr_online_streams",
			"Live ingest streams currently held by the manager."),
		reservoir: reg.Gauge("rr_online_reservoir_rows",
			"Holdout rows currently reservoir-sampled across all streams."),
		republishes: reg.CounterVec("rr_online_republishes_total",
			"Republish attempts by outcome (promoted, rejected, skipped, error).",
			"result"),
		republishSeconds: reg.Histogram("rr_online_republish_seconds",
			"Wall time of one republish: snapshot, eigensolve, GE gate, store put.",
			obs.DefBuckets),
		geGateSeconds: reg.Histogram("rr_online_ge_gate_seconds",
			"Wall time of the GE promotion gate (two GE1 passes over the holdout).",
			obs.DefBuckets),
		rejections: reg.Counter("rr_online_ge_gate_rejections_total",
			"Candidates rejected because GE1 regressed beyond the slack."),
		promotions: reg.Counter("rr_online_promotions_total",
			"Candidates promoted to the model store."),
		checkpoints: reg.CounterVec("rr_online_checkpoints_total",
			"Stream checkpoint writes by result.", "result"),
		ge: reg.GaugeVec("rr_online_ge",
			"GE1 on the holdout at the last gate decision, by role.", "role"),
		geEvals: reg.CounterVec("rr_online_ge_evals_total",
			"Periodic served-model GE re-evaluations by result.", "result"),
		geEvalSeconds: reg.Histogram("rr_online_ge_eval_seconds",
			"Wall time of one served-model GE re-evaluation.", obs.DefBuckets),
		autoRollbacks: reg.Counter("rr_online_auto_rollbacks_total",
			"Served models rolled back to a prior version by the alert policy."),
	}
}
