package online

import (
	"context"
	"errors"
	"testing"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/alert"
)

// versionedStore extends fakeStore with the RollbackStore capability:
// every version is kept, and Rollback re-publishes an old version as
// the new head — the same shape as server.Registry over the WAL store.
type versionedStore struct {
	fakeStore
	history map[string][]*core.Rules // index = version-1
}

func newVersionedStore() *versionedStore {
	return &versionedStore{
		fakeStore: fakeStore{models: make(map[string]*core.Rules), version: make(map[string]int)},
		history:   make(map[string][]*core.Rules),
	}
}

func (v *versionedStore) Put(ctx context.Context, name string, rules *core.Rules) (int, error) {
	version, err := v.fakeStore.Put(ctx, name, rules)
	if err == nil {
		v.mu.Lock()
		v.history[name] = append(v.history[name], rules)
		v.mu.Unlock()
	}
	return version, err
}

func (v *versionedStore) GetVersion(name string, version int) (*core.Rules, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.history[name]
	if version < 1 || version > len(h) {
		return nil, false
	}
	return h[version-1], true
}

func (v *versionedStore) Rollback(ctx context.Context, name string, version int) (*core.Rules, int, error) {
	rules, ok := v.GetVersion(name, version)
	if !ok {
		return nil, 0, errors.New("no such version")
	}
	newVersion, err := v.Put(ctx, name, rules)
	return rules, newVersion, err
}

// evalGEOK is EvalGE with the error fataled.
func evalGEOK(t *testing.T, m *Manager, name string) GESample {
	t.Helper()
	s, err := m.EvalGE(context.Background(), name)
	if err != nil {
		t.Fatalf("EvalGE: %v", err)
	}
	return s
}

// quickRules builds a tight alert rule set for tests: no For hold, no
// cooldown, small windows.
func quickRules() []alert.Rule {
	return []alert.Rule{
		{Name: "ge_regression", Kind: alert.KindRegression, Ratio: 2, Baseline: 3, Recent: 2},
	}
}

func quickEngine(t *testing.T, reg *obs.Registry) *alert.Engine {
	t.Helper()
	eng, err := alert.NewEngine(alert.Config{Rules: quickRules(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestGateDecisionsFeedGESeries: the second republish runs a real gate
// comparison and must append a sample; the first (first_publish) has no
// baseline and must not.
func TestGateDecisionsFeedGESeries(t *testing.T) {
	fs := newFakeStore()
	m := testManager(t, fs, Config{RepublishRows: 1 << 30})
	st, err := m.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 50, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	n := len(st.geHistory)
	st.mu.Unlock()
	if n != 0 {
		t.Fatalf("first_publish recorded %d GE samples, want 0", n)
	}

	pushN(t, st, 50, cleanRow)
	res, err := m.Republish(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != "ge_ok" {
		t.Fatalf("reason = %q, want ge_ok", res.Reason)
	}
	st.mu.Lock()
	history := append([]GESample(nil), st.geHistory...)
	outcomes := append([]bool(nil), st.outcomes...)
	ge, hasGE := st.versionGE[res.Version]
	st.mu.Unlock()
	if len(history) != 1 {
		t.Fatalf("GE history = %d samples, want 1", len(history))
	}
	s := history[0]
	if s.Source != "republish" || !s.Promoted || s.Version != res.Version ||
		s.ServedGE != res.CandidateGE || s.T.IsZero() {
		t.Fatalf("gate sample = %+v (result %+v)", s, res)
	}
	if len(outcomes) != 1 || !outcomes[0] {
		t.Fatalf("outcomes = %v, want [true]", outcomes)
	}
	if !hasGE || ge != res.CandidateGE {
		t.Fatalf("versionGE[%d] = %v/%v, want %v", res.Version, ge, hasGE, res.CandidateGE)
	}
}

// TestEvalGE: the tick re-scores the served model against the current
// reservoir, records an "eval" sample, and surfaces the no-op cases as
// typed errors.
func TestEvalGE(t *testing.T) {
	fs := newFakeStore()
	reg := obs.NewRegistry()
	m := testManager(t, fs, Config{RepublishRows: 1 << 30, Metrics: reg})

	if _, err := m.EvalGE(context.Background(), "ghost"); !errors.Is(err, ErrNoStream) {
		t.Fatalf("EvalGE on missing stream: %v, want ErrNoStream", err)
	}

	st, err := m.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 40, cleanRow)
	if _, err := m.EvalGE(context.Background(), "m"); !errors.Is(err, errNoServed) {
		t.Fatalf("EvalGE before first publish: %v, want errNoServed", err)
	}
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}

	s := evalGEOK(t, m, "m")
	if s.Source != "eval" || s.Version != 1 || s.ServedGE > 1e-6 {
		t.Fatalf("eval sample = %+v, want source=eval version=1 tiny GE", s)
	}
	st.mu.Lock()
	n, ge := len(st.geHistory), st.versionGE[1]
	st.mu.Unlock()
	if n != 1 || ge != s.ServedGE {
		t.Fatalf("history=%d versionGE[1]=%v, want 1 sample matching %v", n, ge, s.ServedGE)
	}
	snap := reg.Snapshot()
	if v := snap[obs.SampleKey("rr_online_ge_evals_total", map[string]string{"result": "ok"})]; v != 1 {
		t.Fatalf("rr_online_ge_evals_total{ok} = %v, want 1", v)
	}
}

// TestGEHistoryRingBounded: the sample ring must stay capped at
// GEHistorySize, keeping the newest samples.
func TestGEHistoryRingBounded(t *testing.T) {
	fs := newFakeStore()
	m := testManager(t, fs, Config{RepublishRows: 1 << 30, GEHistorySize: 5})
	st, err := m.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 40, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		evalGEOK(t, m, "m")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.geHistory) != 5 {
		t.Fatalf("ring length = %d, want 5", len(st.geHistory))
	}
	for i := 1; i < len(st.geHistory); i++ {
		if st.geHistory[i].T.Before(st.geHistory[i-1].T) {
			t.Fatalf("ring out of order at %d: %+v", i, st.geHistory)
		}
	}
}

// TestRegressionAlertFiresOnDrift: a clean baseline followed by a data
// shift (anti-ratio rows flooding the reservoir while the clean model
// stays served) must walk the served-GE series up and fire the
// regression rule, visible in engine state and rr_alert_firing.
func TestRegressionAlertFiresOnDrift(t *testing.T) {
	fs := newFakeStore()
	reg := obs.NewRegistry()
	eng := quickEngine(t, reg)
	m := testManager(t, fs, Config{
		RepublishRows: 1 << 30,
		ReservoirSize: 64,
		Metrics:       reg,
		Alerts:        eng,
	})
	st, err := m.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 64, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		evalGEOK(t, m, "m") // clean baseline samples
	}
	// Flood the stream: the reservoir turns over toward anti rows, the
	// served clean model scores worse and worse.
	pushN(t, st, 2000, antiRow)
	evalGEOK(t, m, "m")
	s := evalGEOK(t, m, "m")
	if s.ServedGE < 1e-3 {
		t.Fatalf("served GE after drift = %v, want clearly regressed", s.ServedGE)
	}

	states, firing := m.Alerts()
	if firing != 1 {
		t.Fatalf("firing = %d (states %+v), want 1", firing, states)
	}
	if len(states) != 1 || states[0].Rule != "ge_regression" ||
		states[0].Target != "m" || states[0].State != alert.StateFiring {
		t.Fatalf("states = %+v", states)
	}
	if v := reg.Snapshot()["rr_alert_firing"]; v != 1 {
		t.Fatalf("rr_alert_firing = %v, want 1", v)
	}

	h, ok := m.Health("m")
	if !ok {
		t.Fatal("no health for live stream")
	}
	if h.Status != "degraded" || h.Firing != 1 || h.CurrentGE != s.ServedGE ||
		h.ServingVersion != 1 || h.Samples != 5 {
		t.Fatalf("health = %+v", h)
	}
	if h.BaselineGE >= h.CurrentGE {
		t.Fatalf("baseline %v not below current %v", h.BaselineGE, h.CurrentGE)
	}

	// Dropping the stream clears its alert states.
	m.Drop("m")
	if _, firing := m.Alerts(); firing != 0 {
		t.Fatalf("firing after drop = %d, want 0", firing)
	}
}

// TestAutoRollbackRestoresBestVersion is the tentpole scenario end to
// end at the manager level: a clean v1, a drift burst force-promoted
// past the gate (huge slack) as v2, the regression alert fires, and the
// policy rolls the head back to v1's rules because they beat v2 on the
// current holdout.
func TestAutoRollbackRestoresBestVersion(t *testing.T) {
	vs := newVersionedStore()
	reg := obs.NewRegistry()
	m := testManager(t, vs, Config{
		RepublishRows:    1 << 30,
		ReservoirSize:    512,
		GESlack:          1e12, // force-promote anything: the drift scenario
		Metrics:          reg,
		Alerts:           quickEngine(t, reg),
		AutoRollback:     true,
		RollbackCooldown: time.Nanosecond,
	})
	st, err := m.Stream("m", 0.9, true) // decay: recent rows dominate the miner
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 400, cleanRow)
	if res, err := m.Republish(context.Background(), "m"); err != nil || !res.Promoted {
		t.Fatalf("publish v1: %+v, %v", res, err)
	}
	for i := 0; i < 3; i++ {
		evalGEOK(t, m, "m") // clean baseline
	}

	// The hijack burst: decayed stats now fit the anti regime, the gate
	// is slacked wide open, v2 (a bad model) is promoted — but the
	// reservoir still remembers the clean history.
	pushN(t, st, 100, antiRow)
	res, err := m.Republish(context.Background(), "m")
	if err != nil || !res.Promoted || res.Reason != "ge_ok" {
		t.Fatalf("force-promotion: %+v, %v", res, err)
	}
	if res.CandidateGE < res.ServedGE {
		t.Fatalf("burst candidate unexpectedly better: %+v", res)
	}
	if vs.headVersion("m") != 2 {
		t.Fatalf("head = %d, want 2", vs.headVersion("m"))
	}

	// One more bad sample fires the regression rule (baseline 3 clean,
	// recent 2 bad) and the policy must roll back within this call.
	evalGEOK(t, m, "m")

	head := vs.headVersion("m")
	if head != 3 {
		t.Fatalf("head after rollback = %d, want 3 (v1 republished)", head)
	}
	restored, _, _ := vs.GetWithVersion("m")
	v1, _ := vs.GetVersion("m", 1)
	if restored != v1 {
		t.Fatal("rolled-back head is not v1's rules")
	}
	st.mu.Lock()
	rollbacks, lastVersion := st.autoRollbacks, st.lastVersion
	st.mu.Unlock()
	if rollbacks != 1 || lastVersion != 3 {
		t.Fatalf("autoRollbacks=%d lastVersion=%d, want 1/3", rollbacks, lastVersion)
	}
	if v := reg.Snapshot()["rr_online_auto_rollbacks_total"]; v != 1 {
		t.Fatalf("rr_online_auto_rollbacks_total = %v, want 1", v)
	}
	h, _ := m.Health("m")
	if h.AutoRollbacks != 1 || h.ServingVersion != 3 {
		t.Fatalf("health after rollback = %+v", h)
	}
}

// TestAutoRollbackFlapGate: inside the cooldown a second firing
// transition must not roll back again.
func TestAutoRollbackFlapGate(t *testing.T) {
	vs := newVersionedStore()
	reg := obs.NewRegistry()
	// Recent window of 1 re-fires on every breaching sample once the
	// alert resolves; the engine's own cooldown is zero so only the
	// manager's rollback cooldown stands between firings and flapping.
	eng, err := alert.NewEngine(alert.Config{
		Rules:   []alert.Rule{{Name: "ge_regression", Kind: alert.KindRegression, Ratio: 2, Baseline: 2, Recent: 1}},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := testManager(t, vs, Config{
		RepublishRows:    1 << 30,
		ReservoirSize:    256,
		GESlack:          1e12,
		Metrics:          reg,
		Alerts:           eng,
		AutoRollback:     true,
		RollbackCooldown: time.Hour,
	})
	st, err := m.Stream("m", 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 200, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	evalGEOK(t, m, "m")
	evalGEOK(t, m, "m")
	pushN(t, st, 60, antiRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err) // v2, bad; gate sample fires the alert, policy rolls back -> v3
	}
	if vs.headVersion("m") != 3 {
		t.Fatalf("head = %d, want 3 after first rollback", vs.headVersion("m"))
	}
	// Force more firing transitions: bad candidates promoted again.
	pushN(t, st, 60, antiRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err) // v4 bad
	}
	head := vs.headVersion("m")
	st.mu.Lock()
	rollbacks := st.autoRollbacks
	st.mu.Unlock()
	if rollbacks != 1 {
		t.Fatalf("autoRollbacks = %d, want 1 (cooldown must gate the second)", rollbacks)
	}
	if head != 4 {
		t.Fatalf("head = %d, want 4 (bad promote, no rollback)", head)
	}
}

// TestCheckpointResumeGEHistory: kill/restart must preserve the GE
// ring, gate outcomes, version annotations and rollback counters so
// trend detection does not restart blind.
func TestCheckpointResumeGEHistory(t *testing.T) {
	dir := t.TempDir()
	fs := newFakeStore()
	m := testManager(t, fs, Config{
		RepublishRows: 1 << 30,
		CheckpointDir: dir,
	})
	st, err := m.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 60, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 60, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		evalGEOK(t, m, "m")
	}
	st.mu.Lock()
	wantHistory := append([]GESample(nil), st.geHistory...)
	wantOutcomes := append([]bool(nil), st.outcomes...)
	wantEps := st.geEps
	st.mu.Unlock()
	if len(wantHistory) != 4 { // 1 gate sample + 3 evals
		t.Fatalf("precondition: history = %d, want 4", len(wantHistory))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := testManager(t, fs, Config{RepublishRows: 1 << 30, CheckpointDir: dir})
	st2 := m2.lookup("m")
	if st2 == nil {
		t.Fatal("stream not resumed")
	}
	st2.mu.Lock()
	defer st2.mu.Unlock()
	if len(st2.geHistory) != len(wantHistory) {
		t.Fatalf("resumed history = %d samples, want %d", len(st2.geHistory), len(wantHistory))
	}
	for i := range wantHistory {
		got, want := st2.geHistory[i], wantHistory[i]
		if got.ServedGE != want.ServedGE || got.Source != want.Source ||
			got.Version != want.Version || !got.T.Equal(want.T) {
			t.Fatalf("sample %d = %+v, want %+v", i, got, want)
		}
	}
	if len(st2.outcomes) != len(wantOutcomes) {
		t.Fatalf("resumed outcomes = %v, want %v", st2.outcomes, wantOutcomes)
	}
	if st2.geEps != wantEps {
		t.Fatalf("resumed eps = %v, want %v", st2.geEps, wantEps)
	}
	if _, ok := st2.versionGE[2]; !ok {
		t.Fatalf("versionGE not resumed: %v", st2.versionGE)
	}
}

// TestGEEvalTick: Start with GEEvalEvery must produce eval samples
// without any manual EvalGE calls.
func TestGEEvalTick(t *testing.T) {
	fs := newFakeStore()
	m := testManager(t, fs, Config{
		RepublishRows: 1 << 30,
		GEEvalEvery:   5 * time.Millisecond,
	})
	st, err := m.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 40, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	m.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st.mu.Lock()
		n := len(st.geHistory)
		st.mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("eval tick produced %d samples, want >= 2", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
