package online

// Model-quality monitoring: the GE time-series ring, the periodic
// re-evaluation tick, the alert hookup, and the auto-rollback policy.
//
// The promotion gate (online.go) measures GE only when a republish
// fires, and until this file existed it threw the numbers away — a
// slowly drifting stream could degrade a served model invisibly
// between gate decisions. Here every gate decision and every
// Config.GEEvalEvery tick appends a timestamped sample to a bounded
// per-stream ring (persisted in the checkpoint sidecars, so trends
// survive restarts), the ring feeds the alert engine after each
// sample, and — opt-in — a firing sustained-regression alert triggers
// a rollback to the best prior version the monitor has GE numbers
// for, re-scored against the current holdout so the choice reflects
// today's data rather than the data the version was promoted on.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs/alert"
	"ratiorules/internal/obs/trace"
)

// Monitoring defaults for Config zero values.
const (
	// DefaultGEHistorySize caps the per-stream GE sample ring.
	DefaultGEHistorySize = 256
	// DefaultRollbackMargin is how much better (relative GE) a prior
	// version must score before auto-rollback prefers it. Deliberately
	// independent of GESlack: the gate's tolerance for promoting says
	// nothing about how much better "better" must be to flip back.
	DefaultRollbackMargin = 0.2
	// DefaultRollbackCooldown is the minimum spacing between
	// auto-rollbacks of one stream — the flap gate.
	DefaultRollbackCooldown = 5 * time.Minute
	// outcomeWindow caps the per-stream ring of gate outcomes feeding
	// the rejection-rate rule.
	outcomeWindow = 64
)

// RollbackStore is the optional store capability auto-rollback needs:
// reading prior versions and restoring one as the new head. Satisfied
// by server.Registry; plain ModelStores (e.g. bench fakes) without it
// simply never roll back.
type RollbackStore interface {
	GetVersion(name string, version int) (*core.Rules, bool)
	Rollback(ctx context.Context, name string, version int) (*core.Rules, int, error)
}

// GEAnnotator is the optional store capability for attaching the
// monitor's GE measurements to version metadata, so version listings
// can show quality next to size and age.
type GEAnnotator interface {
	SetVersionGE(name string, version int, ge float64)
}

// GESample is one point of a model's quality time series.
type GESample struct {
	T time.Time `json:"t"`
	// ServedGE is GE₁ of the model serving *after* this event — the
	// series the alert rules watch.
	ServedGE float64 `json:"served_ge"`
	// CandidateGE is the gate input on republish samples (0 on eval
	// and rollback samples).
	CandidateGE float64 `json:"candidate_ge,omitempty"`
	// Version is the store version serving after this event.
	Version int `json:"version,omitempty"`
	// Source is "republish", "eval" or "rollback".
	Source string `json:"source"`
	// Promoted marks republish samples whose candidate passed the gate.
	Promoted bool `json:"promoted,omitempty"`
}

// Eval-tick sentinels: conditions that make a GE evaluation a no-op
// rather than a failure (streams idle before first publish, or drained
// reservoirs).
var (
	errNoServed  = errors.New("online: no served model to evaluate")
	errNoHoldout = errors.New("online: empty holdout reservoir")
)

// EvalGE re-scores a model's *served* rules against the stream's
// current holdout reservoir and appends the result to the GE ring —
// the periodic heartbeat that keeps the quality series moving when no
// republish fires. Runs under an online.ge_eval span and feeds the
// alert engine.
func (m *Manager) EvalGE(ctx context.Context, name string) (GESample, error) {
	ctx, sp := trace.Start(ctx, "online.ge_eval")
	if sp == nil && m.cfg.Tracer != nil {
		ctx, sp = m.cfg.Tracer.StartRoot(ctx, "online.ge_eval", trace.SpanContext{})
	}
	start := time.Now()
	sample, err := m.evalGE(ctx, name)
	m.met.geEvalSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		m.met.geEvals.With("error").Inc()
	} else {
		m.met.geEvals.With("ok").Inc()
	}
	if sp != nil {
		sp.SetAttr("model", name)
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			sp.SetAttr("served_ge", sample.ServedGE)
			sp.SetAttr("version", sample.Version)
		}
		sp.End()
	}
	return sample, err
}

func (m *Manager) evalGE(ctx context.Context, name string) (GESample, error) {
	st := m.lookup(name)
	if st == nil {
		return GESample{}, fmt.Errorf("%w: %q", ErrNoStream, name)
	}
	st.mu.Lock()
	holdout := append([][]float64(nil), st.reservoir...)
	st.mu.Unlock()
	if len(holdout) == 0 {
		return GESample{}, fmt.Errorf("%w: %q", errNoHoldout, name)
	}
	served, version, ok := m.store.GetWithVersion(name)
	if !ok {
		return GESample{}, fmt.Errorf("%w: %q", errNoServed, name)
	}
	test, err := matrix.FromRows(holdout)
	if err != nil {
		return GESample{}, fmt.Errorf("online: building holdout for %q: %w", name, err)
	}
	ge, err := core.GE1With(served, test, core.GEOptions{Workers: m.cfg.GateWorkers})
	if err != nil {
		return GESample{}, fmt.Errorf("online: evaluating served GE for %q: %w", name, err)
	}
	m.met.ge.With("served").Set(ge)

	sample := GESample{T: time.Now(), ServedGE: ge, Version: version, Source: "eval"}
	st.mu.Lock()
	st.appendGE(sample, m.cfg.GEHistorySize)
	st.versionGE[version] = ge
	st.geEps = rmsScale(holdout) * 1e-9
	st.mu.Unlock()
	m.annotateVersionGE(name, version, ge)
	m.runAlerts(ctx, name)
	return sample, nil
}

// evalAll runs the GE tick over every stream; expected no-op
// conditions stay at debug level.
func (m *Manager) evalAll(ctx context.Context) {
	for _, name := range m.Names() {
		if _, err := m.EvalGE(ctx, name); err != nil {
			if errors.Is(err, errNoServed) || errors.Is(err, errNoHoldout) {
				m.cfg.Logger.Debug("online GE eval skipped", "model", name, "err", err)
			} else {
				m.cfg.Logger.Warn("online GE eval failed", "model", name, "err", err)
			}
		}
	}
}

// appendGE pushes one sample into the bounded ring; callers hold s.mu.
func (s *Stream) appendGE(smp GESample, max int) {
	s.geHistory = append(s.geHistory, smp)
	if n := len(s.geHistory); max > 0 && n > max {
		copy(s.geHistory, s.geHistory[n-max:])
		s.geHistory = s.geHistory[:max]
	}
}

// recordGateSample appends the GE sample and gate outcome of one
// republish decision; callers hold s.mu. Promotions make the candidate
// the served model, so the series value is the candidate's GE then.
func (s *Stream) recordGateSample(res RepublishResult, eps float64, max int) {
	served := res.ServedGE
	version := s.lastVersion
	if res.Promoted {
		served = res.CandidateGE
		version = res.Version
	}
	s.appendGE(GESample{
		T:           time.Now(),
		ServedGE:    served,
		CandidateGE: res.CandidateGE,
		Version:     version,
		Source:      "republish",
		Promoted:    res.Promoted,
	}, max)
	s.outcomes = append(s.outcomes, res.Promoted)
	if n := len(s.outcomes); n > outcomeWindow {
		copy(s.outcomes, s.outcomes[n-outcomeWindow:])
		s.outcomes = s.outcomes[:outcomeWindow]
	}
	s.geEps = eps
	if res.Promoted {
		s.versionGE[res.Version] = res.CandidateGE
	}
}

// annotateVersionGE attaches a GE measurement to store version
// metadata when the store supports it.
func (m *Manager) annotateVersionGE(name string, version int, ge float64) {
	if ann, ok := m.store.(GEAnnotator); ok {
		ann.SetVersionGE(name, version, ge)
	}
}

// runAlerts feeds one stream's current GE series and gate outcomes to
// the alert engine and, when auto-rollback is enabled, reacts to
// quality rules that transition to firing.
func (m *Manager) runAlerts(ctx context.Context, name string) {
	eng := m.cfg.Alerts
	if eng == nil {
		return
	}
	st := m.lookup(name)
	if st == nil {
		return
	}
	st.mu.Lock()
	in := alert.Input{
		Samples:  make([]alert.Sample, len(st.geHistory)),
		Outcomes: append([]bool(nil), st.outcomes...),
		Eps:      st.geEps,
	}
	for i, s := range st.geHistory {
		in.Samples[i] = alert.Sample{T: s.T, V: s.ServedGE}
	}
	st.mu.Unlock()

	for _, tr := range eng.Eval(ctx, name, in) {
		if !m.cfg.AutoRollback || tr.To != alert.StateFiring {
			continue
		}
		// Only sustained quality regressions justify swapping the
		// served model; a rejection-rate alert means the gate is
		// already defending it.
		if tr.Rule.Kind == alert.KindRegression || tr.Rule.Kind == alert.KindSlope {
			m.maybeAutoRollback(ctx, name, tr)
			return
		}
	}
}

// maybeAutoRollback re-scores every prior version the monitor has GE
// numbers for against the current holdout, and restores the best one
// when it beats the served model by RollbackMargin. Edge-triggered
// (only on transitions to firing), cooldown-gated per stream, and a
// no-op when the store cannot roll back.
func (m *Manager) maybeAutoRollback(ctx context.Context, name string, tr alert.Transition) {
	ctx, sp := trace.Start(ctx, "online.auto_rollback")
	outcome := "skipped"
	var fromVersion, toVersion int
	defer func() {
		if sp != nil {
			sp.SetAttr("model", name)
			sp.SetAttr("rule", tr.Rule.Name)
			sp.SetAttr("outcome", outcome)
			if toVersion != 0 {
				sp.SetAttr("from_version", fromVersion)
				sp.SetAttr("to_version", toVersion)
			}
			sp.End()
		}
	}()

	rb, ok := m.store.(RollbackStore)
	if !ok {
		m.cfg.Logger.Debug("auto-rollback unavailable: store cannot roll back", "model", name)
		return
	}
	st := m.lookup(name)
	if st == nil {
		return
	}
	st.mu.Lock()
	holdout := append([][]float64(nil), st.reservoir...)
	last := st.lastRollback
	versions := make([]int, 0, len(st.versionGE))
	for v := range st.versionGE {
		versions = append(versions, v)
	}
	st.mu.Unlock()
	if m.cfg.RollbackCooldown > 0 && !last.IsZero() && time.Since(last) < m.cfg.RollbackCooldown {
		outcome = "cooldown"
		m.cfg.Logger.Debug("auto-rollback suppressed by cooldown", "model", name, "rule", tr.Rule.Name)
		return
	}
	if len(holdout) == 0 {
		return
	}
	served, servedVersion, ok := m.store.GetWithVersion(name)
	if !ok {
		return
	}
	fromVersion = servedVersion
	test, err := matrix.FromRows(holdout)
	if err != nil {
		return
	}
	geOpts := core.GEOptions{Workers: m.cfg.GateWorkers}
	servedGE, err := core.GE1With(served, test, geOpts)
	if err != nil {
		return
	}

	// Every candidate is re-scored on *today's* holdout: the GE a
	// version was promoted with reflects the reservoir of its era and
	// would bias the choice toward old data.
	sort.Ints(versions)
	bestVersion, bestGE := 0, math.Inf(1)
	for _, v := range versions {
		if v == servedVersion {
			continue
		}
		rules, ok := rb.GetVersion(name, v)
		if !ok || rules.Width() != served.Width() {
			continue
		}
		ge, err := core.GE1With(rules, test, geOpts)
		if err != nil {
			continue
		}
		if ge < bestGE {
			bestGE, bestVersion = ge, v
		}
	}
	eps := rmsScale(holdout) * 1e-9
	if bestVersion == 0 || bestGE > servedGE*(1-m.cfg.RollbackMargin)+eps {
		outcome = "no_better_version"
		m.cfg.Logger.Info("auto-rollback found no sufficiently better prior version",
			"model", name, "rule", tr.Rule.Name, "served_ge", servedGE,
			"best_prior_ge", bestGE, "margin", m.cfg.RollbackMargin)
		return
	}

	_, newVersion, err := rb.Rollback(ctx, name, bestVersion)
	if err != nil {
		outcome = "error"
		m.cfg.Logger.Warn("auto-rollback failed", "model", name,
			"to_version", bestVersion, "err", err)
		return
	}
	outcome = "rolled_back"
	toVersion = newVersion
	m.met.autoRollbacks.Inc()
	now := time.Now()
	st.mu.Lock()
	st.autoRollbacks++
	st.lastRollback = now
	st.lastVersion = newVersion
	st.versionGE[newVersion] = bestGE
	st.appendGE(GESample{T: now, ServedGE: bestGE, Version: newVersion, Source: "rollback"},
		m.cfg.GEHistorySize)
	st.mu.Unlock()
	m.annotateVersionGE(name, newVersion, bestGE)
	m.cfg.Logger.Warn("auto-rollback restored prior version",
		"model", name, "rule", tr.Rule.Name,
		"from_version", servedVersion, "restored", bestVersion, "new_version", newVersion,
		"served_ge", servedGE, "restored_ge", bestGE)
}

// ModelHealth is the per-model quality summary behind
// GET /v1/rules/{name}/health.
type ModelHealth struct {
	Name           string `json:"name"`
	ServingVersion int    `json:"serving_version,omitempty"`
	// CurrentGE is the latest served-GE sample; BaselineGE the mean of
	// the trailing baseline window before the recent samples (0 until
	// enough history exists).
	CurrentGE  float64 `json:"current_ge"`
	BaselineGE float64 `json:"baseline_ge"`
	// TrendPerSample is the relative served-GE slope per sample over
	// the recent window (positive = degrading).
	TrendPerSample float64        `json:"trend_per_sample"`
	Samples        int            `json:"samples"`
	History        []GESample     `json:"history,omitempty"`
	Alerts         []alert.Status `json:"alerts"`
	Firing         int            `json:"firing"`
	AutoRollbacks  int            `json:"auto_rollbacks,omitempty"`
	Status         string         `json:"status"` // "ok" | "degraded"
}

// Health windows, mirroring the stock regression/slope rules so the
// endpoint's baseline and trend explain what the alerts see.
const (
	healthBaselineWindow = 12
	healthRecentWindow   = 4
	healthTrendWindow    = 8
	healthHistoryCap     = 32
)

// Health summarizes one stream's quality state, ok=false without a
// live stream.
func (m *Manager) Health(name string) (ModelHealth, bool) {
	st := m.lookup(name)
	if st == nil {
		return ModelHealth{}, false
	}
	st.mu.Lock()
	history := append([]GESample(nil), st.geHistory...)
	autoRollbacks := st.autoRollbacks
	st.mu.Unlock()

	h := ModelHealth{Name: name, Samples: len(history), AutoRollbacks: autoRollbacks, Status: "ok"}
	if _, version, ok := m.store.GetWithVersion(name); ok {
		h.ServingVersion = version
	}
	series := make([]alert.Sample, len(history))
	for i, s := range history {
		series[i] = alert.Sample{T: s.T, V: s.ServedGE}
	}
	if n := len(series); n > 0 {
		h.CurrentGE = series[n-1].V
		if n > healthRecentWindow {
			base := series[:n-healthRecentWindow]
			if len(base) > healthBaselineWindow {
				base = base[len(base)-healthBaselineWindow:]
			}
			h.BaselineGE = alert.MeanValues(base)
		}
		trend := series
		if n > healthTrendWindow {
			trend = series[n-healthTrendWindow:]
		}
		if mean := alert.MeanValues(trend); mean > 0 {
			h.TrendPerSample = alert.SlopePerSample(trend) / mean
		}
	}
	if len(history) > healthHistoryCap {
		history = history[len(history)-healthHistoryCap:]
	}
	h.History = history
	if m.cfg.Alerts != nil {
		h.Alerts = m.cfg.Alerts.Statuses(name)
		for _, a := range h.Alerts {
			if a.State == alert.StateFiring {
				h.Firing++
			}
		}
	}
	if h.Firing > 0 {
		h.Status = "degraded"
	}
	return h, true
}

// Alerts exposes the alert engine's full state for GET /debug/alerts
// and /readyz (nil-engine managers report empty).
func (m *Manager) Alerts() (states []alert.Status, firing int) {
	if m.cfg.Alerts == nil {
		return nil, 0
	}
	return m.cfg.Alerts.Snapshot()
}

// AlertRules lists the configured alert rules.
func (m *Manager) AlertRules() []alert.Rule {
	if m.cfg.Alerts == nil {
		return nil
	}
	return m.cfg.Alerts.Rules()
}
