package online

import (
	"context"
	"errors"
	"fmt"

	"ratiorules/internal/core"
)

// This file is the cluster coordinator's seam into the manager. In a
// sharded deployment the coordinator fans rows out to worker nodes and
// owns the only merged view of the data, but promotion must still run
// through the exact machinery single-node streams use — the GE gate,
// alerting, auto-rollback, version annotations, and checkpoints — so
// the coordinator (a) keeps the holdout reservoir fed via ObserveBatch
// and (b) hands each merged shard union to RepublishFrom.

// ObserveBatch offers a block of rows (flat, row-major) to the stream's
// holdout reservoir without folding them into the local miner. Cluster
// coordinators call this on the fan-out path: the data fold happens on
// the workers, while the reservoir — which gates every republish — must
// see the same uniform sample of the full ingest a single node would.
// One lock acquisition covers the whole block.
func (s *Stream) ObserveBatch(flat []float64, width int) {
	if width <= 0 || len(flat) < width {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for off := 0; off+width <= len(flat); off += width {
		s.reservoirOffer(flat[off : off+width])
	}
}

// RepublishFrom installs merged as the stream's accumulator and runs
// one full republish cycle on it: eigensolve, GE gate against the
// holdout, store publish, quality-series sample, alert evaluation, and
// checkpoint cadence — identical to a local republish, so every
// guarantee from the single-node path (ETags, versions, alerts,
// auto-rollback) applies unchanged to a cluster-merged model. The
// manager takes ownership of merged; the stream is created on first use
// with merged's decay.
func (m *Manager) RepublishFrom(ctx context.Context, name string, merged *core.StreamMiner) (RepublishResult, error) {
	if merged == nil {
		return RepublishResult{}, fmt.Errorf("online: republish from nil miner for %q", name)
	}
	st, err := m.Stream(name, merged.Decay(), false)
	if err != nil {
		return RepublishResult{}, err
	}
	st.mu.Lock()
	st.sm = merged
	st.mu.Unlock()
	return m.Republish(ctx, name)
}

// IsTooFewRows reports whether err is a republish attempt on a stream
// that cannot mine yet (fewer than two rows) — routine during cluster
// spin-up, not a failure.
func IsTooFewRows(err error) bool { return errors.Is(err, errTooFewRows) }
