package online

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/obs"
)

// fakeStore is an in-memory ModelStore recording every promotion.
type fakeStore struct {
	mu      sync.Mutex
	models  map[string]*core.Rules
	version map[string]int
	puts    int
	failPut error
}

func newFakeStore() *fakeStore {
	return &fakeStore{models: make(map[string]*core.Rules), version: make(map[string]int)}
}

func (f *fakeStore) Put(_ context.Context, name string, rules *core.Rules) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failPut != nil {
		return 0, f.failPut
	}
	f.puts++
	f.version[name]++
	f.models[name] = rules
	return f.version[name], nil
}

func (f *fakeStore) GetWithVersion(name string) (*core.Rules, int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.models[name]
	return r, f.version[name], ok
}

func (f *fakeStore) headVersion(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version[name]
}

// cleanRow is the paper's ratio regime: amount:2·amount, so a model
// mined on clean rows reconstructs them exactly (GE1 ~ 0).
func cleanRow(i int) []float64 {
	x := 1 + float64(i%17)/4
	return []float64{x, 2 * x}
}

// antiRow inverts the ratio at the same magnitude — the adversarial
// regime that must not capture the served model.
func antiRow(i int) []float64 {
	x := 1 + float64(i%17)/4
	return []float64{x, -2 * x}
}

func testManager(t *testing.T, store ModelStore, cfg Config) *Manager {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	m, err := NewManager(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

func pushN(t *testing.T, st *Stream, n int, row func(int) []float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := st.Push(context.Background(), row(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
}

// TestRowTriggerFirstPublish: without Start, crossing the row threshold
// republishes synchronously and the first candidate publishes version 1
// (no baseline to gate against).
func TestRowTriggerFirstPublish(t *testing.T) {
	fs := newFakeStore()
	m := testManager(t, fs, Config{RepublishRows: 24})
	st, err := m.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 24, cleanRow)
	if got := fs.headVersion("m"); got != 1 {
		t.Fatalf("head version = %d, want 1 after row trigger", got)
	}
	status, ok := m.Status("m")
	if !ok {
		t.Fatal("no stream status")
	}
	if status.Rows != 24 || status.Width != 2 || status.Promotions != 1 ||
		status.Republishes != 1 || status.Pending != 0 {
		t.Fatalf("status = %+v", status)
	}
	if status.ReservoirRows != 24 {
		t.Fatalf("reservoir = %d, want 24 (below capacity keeps every row)", status.ReservoirRows)
	}
}

// TestGEGateRejectsHijackedStream is the adversarial scenario the gate
// exists for: a decayed stream is hijacked by a short burst of
// anti-correlated rows. The re-mined candidate fits the burst, but the
// reservoir still remembers the long clean history, so candidate GE1
// regresses and the gate must keep the served version.
func TestGEGateRejectsHijackedStream(t *testing.T) {
	fs := newFakeStore()
	m := testManager(t, fs, Config{RepublishRows: 1 << 30, ReservoirSize: 512})
	st, err := m.Stream("m", 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st, 200, cleanRow)
	res, err := m.Republish(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.Reason != "first_publish" {
		t.Fatalf("first republish = %+v", res)
	}

	pushN(t, st, 20, antiRow)
	res, err = m.Republish(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatalf("hijacked candidate promoted: %+v", res)
	}
	if res.Reason != "ge_regressed" || res.CandidateGE <= res.ServedGE {
		t.Fatalf("rejection = %+v", res)
	}
	if got := fs.headVersion("m"); got != 1 {
		t.Fatalf("served version moved to %d after rejection", got)
	}
	status, _ := m.Status("m")
	if status.Rejections != 1 || status.Promotions != 1 {
		t.Fatalf("status after rejection = %+v", status)
	}
	if status.LastCandGE <= status.LastServedGE {
		t.Fatalf("status GE not recorded: %+v", status)
	}

	// The stream itself keeps accumulating: once clean rows return and
	// wash the burst out of the decayed sums, promotion resumes.
	pushN(t, st, 200, cleanRow)
	res, err = m.Republish(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("recovered candidate still rejected: %+v", res)
	}
	if got := fs.headVersion("m"); got != 2 {
		t.Fatalf("head version = %d after recovery, want 2", got)
	}
}

// TestDecayConflict: an explicit decay that contradicts the running
// stream is refused; omitting the decay joins it.
func TestDecayConflict(t *testing.T) {
	m := testManager(t, newFakeStore(), Config{})
	if _, err := m.Stream("m", 0.25, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stream("m", 0.1, true); !errors.Is(err, ErrDecayConflict) {
		t.Fatalf("conflicting decay: err = %v, want ErrDecayConflict", err)
	}
	st, err := m.Stream("m", 0, false)
	if err != nil {
		t.Fatalf("implicit join: %v", err)
	}
	if st.decay != 0.25 {
		t.Fatalf("joined stream decay = %v, want 0.25", st.decay)
	}
	if _, err := m.Stream("m2", 1.5, true); err == nil {
		t.Fatal("decay outside [0,1) accepted")
	}
}

// TestPushRejectsBadRows: width changes mid-stream fail per-row without
// disturbing the accumulated state.
func TestPushRejectsBadRows(t *testing.T) {
	m := testManager(t, newFakeStore(), Config{})
	st, _ := m.Stream("m", 0, false)
	pushN(t, st, 3, cleanRow)
	if _, err := st.Push(context.Background(), []float64{1, 2, 3}); !errors.Is(err, core.ErrWidth) {
		t.Fatalf("wide row: err = %v, want ErrWidth", err)
	}
	status, _ := m.Status("m")
	if status.Rows != 3 || status.ReservoirRows != 3 {
		t.Fatalf("bad row disturbed state: %+v", status)
	}
}

// TestReservoirCapAndUniformity: the reservoir never exceeds its
// capacity and keeps sampling after it fills.
func TestReservoirCapAndUniformity(t *testing.T) {
	m := testManager(t, newFakeStore(), Config{RepublishRows: 1 << 30, ReservoirSize: 16, Seed: 7})
	st, _ := m.Stream("m", 0, false)
	pushN(t, st, 500, cleanRow)
	status, _ := m.Status("m")
	if status.ReservoirRows != 16 {
		t.Fatalf("reservoir = %d, want capacity 16", status.ReservoirRows)
	}
	st.mu.Lock()
	seen := st.seen
	st.mu.Unlock()
	if seen != 500 {
		t.Fatalf("seen = %d, want 500", seen)
	}
}

// TestIntervalRepublish: with Start and an interval trigger, ingested
// rows publish without ever crossing the row threshold.
func TestIntervalRepublish(t *testing.T) {
	fs := newFakeStore()
	m := testManager(t, fs, Config{RepublishRows: 1 << 30, RepublishEvery: 5 * time.Millisecond})
	m.Start()
	st, _ := m.Stream("m", 0, false)
	pushN(t, st, 40, cleanRow)
	deadline := time.Now().Add(5 * time.Second)
	for fs.headVersion("m") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval republish never promoted")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRepublishNoStream and too-few-rows behavior.
func TestRepublishEdgeCases(t *testing.T) {
	m := testManager(t, newFakeStore(), Config{})
	if _, err := m.Republish(context.Background(), "ghost"); !errors.Is(err, ErrNoStream) {
		t.Fatalf("ghost republish: err = %v, want ErrNoStream", err)
	}
	st, _ := m.Stream("m", 0, false)
	pushN(t, st, 1, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err == nil {
		t.Fatal("republish with 1 row must fail")
	}
}

// TestDrop removes the stream and its checkpoint file.
func TestDrop(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, newFakeStore(), Config{CheckpointDir: dir, RepublishRows: 1 << 30})
	st, _ := m.Stream("m", 0, false)
	pushN(t, st, 10, cleanRow)
	if err := m.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	path := checkpointPath(dir, "m")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if !m.Drop("m") {
		t.Fatal("Drop found no stream")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint survived Drop: %v", err)
	}
	if m.Drop("m") {
		t.Fatal("second Drop found a stream")
	}
	if _, ok := m.Status("m"); ok {
		t.Fatal("status after Drop")
	}
}

// TestCheckpointResume is the crash-recovery contract: Close
// checkpoints, a fresh manager over the same directory resumes with
// identical counters and mines successfully from the restored sums.
func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	fs := newFakeStore()
	cfg := Config{CheckpointDir: dir, RepublishRows: 40, Seed: 3, Metrics: obs.NewRegistry()}
	m1, err := NewManager(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := m1.Stream("m", 0, false)
	pushN(t, st, 100, cleanRow) // two row-trigger republishes land v1, v2
	want, _ := m1.Status("m")
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if want.Promotions == 0 {
		t.Fatalf("precondition: no promotions before restart: %+v", want)
	}

	cfg.Metrics = obs.NewRegistry()
	m2, err := NewManager(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, ok := m2.Status("m")
	if !ok {
		t.Fatal("stream not resumed")
	}
	// Pending resets across restart (those rows are already inside the
	// saved sums); everything else must survive verbatim.
	want.Pending = 0
	if got != want {
		t.Fatalf("resumed status = %+v, want %+v", got, want)
	}

	st2, err := m2.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, st2, 10, cleanRow)
	res, err := m2.Republish(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("post-resume republish rejected: %+v", res)
	}
	if got, _ := m2.Status("m"); got.Rows != want.Rows+10 {
		t.Fatalf("resumed rows = %d, want %d", got.Rows, want.Rows+10)
	}
}

// TestCorruptCheckpointSkipped: a torn or garbage sidecar is skipped,
// not fatal, and does not block other streams from loading.
func TestCorruptCheckpointSkipped(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CheckpointDir: dir, Metrics: obs.NewRegistry()}
	m1, err := NewManager(newFakeStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := m1.Stream("good", 0, false)
	pushN(t, st, 10, cleanRow)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.stream.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Metrics = obs.NewRegistry()
	m2, err := NewManager(newFakeStore(), cfg)
	if err != nil {
		t.Fatalf("corrupt sidecar broke startup: %v", err)
	}
	defer m2.Close()
	if names := m2.Names(); len(names) != 1 || names[0] != "good" {
		t.Fatalf("resumed streams = %v, want [good]", names)
	}
}

// TestFailedPutSurfacesError: a store failure during promotion is an
// error, and the stream's promotion counter does not advance.
func TestFailedPutSurfacesError(t *testing.T) {
	fs := newFakeStore()
	fs.failPut = errors.New("disk full")
	m := testManager(t, fs, Config{RepublishRows: 1 << 30})
	st, _ := m.Stream("m", 0, false)
	pushN(t, st, 10, cleanRow)
	if _, err := m.Republish(context.Background(), "m"); err == nil {
		t.Fatal("failed Put did not surface")
	}
	status, _ := m.Status("m")
	if status.Promotions != 0 {
		t.Fatalf("promotions = %d after failed put", status.Promotions)
	}
}

// TestConcurrentIngest hammers one stream from many goroutines with the
// row trigger live — the mutex-guarded accumulator and synchronous
// republish path must stay consistent (run under -race).
func TestConcurrentIngest(t *testing.T) {
	fs := newFakeStore()
	m := testManager(t, fs, Config{RepublishRows: 50, ReservoirSize: 64})
	st, _ := m.Stream("m", 0, false)
	var wg sync.WaitGroup
	const workers, rowsPer = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rowsPer; i++ {
				if _, err := st.Push(context.Background(), cleanRow(w*rowsPer+i)); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	status, _ := m.Status("m")
	if status.Rows != workers*rowsPer {
		t.Fatalf("rows = %d, want %d", status.Rows, workers*rowsPer)
	}
	if fs.headVersion("m") == 0 {
		t.Fatal("no promotion despite crossing the row trigger many times")
	}
}
