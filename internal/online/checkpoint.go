package online

// Durable stream state. Each stream's sufficient statistics (the
// core.StreamMiner Save payload), holdout reservoir and gate counters
// are written as one JSON sidecar per model under Config.CheckpointDir,
// with the store's atomic-write discipline (tmp file, fsync, rename,
// directory sync) so a crash mid-write leaves either the old checkpoint
// or the new one, never a torn file. NewManager reloads every sidecar
// it can parse and skips — loudly — the ones it cannot: a corrupt
// checkpoint costs one stream's accumulated state, not server startup.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"ratiorules/internal/core"
)

// checkpointFormat versions the sidecar layout.
const checkpointFormat = 1

// checkpointSuffix names stream sidecars: <escaped-model>.stream.json.
const checkpointSuffix = ".stream.json"

// streamCheckpoint is the sidecar document. Stream holds the raw
// core.StreamMiner Save output, so the sufficient-statistics encoding
// stays owned by internal/core (and covered by its fuzzer).
type streamCheckpoint struct {
	Format      int             `json:"format"`
	Name        string          `json:"name"`
	Decay       float64         `json:"decay"`
	Seen        int             `json:"seen"`
	Republishes int             `json:"republishes"`
	Promotions  int             `json:"promotions"`
	Rejections  int             `json:"rejections"`
	LastVersion int             `json:"last_version"`
	LastCandGE  float64         `json:"last_candidate_ge"`
	LastServGE  float64         `json:"last_served_ge"`
	Reservoir   [][]float64     `json:"reservoir"`
	Stream      json.RawMessage `json:"stream"`

	// Quality-monitor state (format 1, additive: sidecars written
	// before these fields existed load with empty monitor state).
	GEHistory     []GESample      `json:"ge_history,omitempty"`
	Outcomes      []bool          `json:"outcomes,omitempty"`
	VersionGE     map[int]float64 `json:"version_ge,omitempty"`
	GEEps         float64         `json:"ge_eps,omitempty"`
	AutoRollbacks int             `json:"auto_rollbacks,omitempty"`
}

// checkpointPath is the sidecar path for a model; the name is
// query-escaped so arbitrary model names cannot traverse out of dir.
func checkpointPath(dir, name string) string {
	return filepath.Join(dir, url.QueryEscape(name)+checkpointSuffix)
}

// CheckpointAll writes every stream's sidecar, returning the first
// error (all streams are still attempted). No-op without a configured
// checkpoint directory.
func (m *Manager) CheckpointAll() error {
	if m.cfg.CheckpointDir == "" {
		return nil
	}
	m.mu.Lock()
	streams := make([]*Stream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.mu.Unlock()
	var first error
	for _, st := range streams {
		if err := m.checkpoint(st); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// checkpointLogged is checkpoint with errors logged instead of
// returned, for the republish path where a failed checkpoint must not
// fail the promotion that already happened.
func (m *Manager) checkpointLogged(st *Stream) {
	if err := m.checkpoint(st); err != nil {
		m.cfg.Logger.Warn("online checkpoint failed", "model", st.name, "err", err)
	}
}

// checkpoint snapshots one stream under its lock and writes the sidecar
// atomically. Streams that have not seen a row yet have no state worth
// keeping and are skipped.
func (m *Manager) checkpoint(st *Stream) error {
	st.mu.Lock()
	if st.sm == nil {
		st.mu.Unlock()
		return nil
	}
	var stream bytes.Buffer
	if err := st.sm.Save(&stream); err != nil {
		st.mu.Unlock()
		m.met.checkpoints.With("error").Inc()
		return fmt.Errorf("online: saving stream %q: %w", st.name, err)
	}
	cp := streamCheckpoint{
		Format:      checkpointFormat,
		Name:        st.name,
		Decay:       st.decay,
		Seen:        st.seen,
		Republishes: st.republishes,
		Promotions:  st.promotions,
		Rejections:  st.rejections,
		LastVersion: st.lastVersion,
		LastCandGE:  st.lastCandGE,
		LastServGE:  st.lastServedGE,
		Reservoir:   append([][]float64(nil), st.reservoir...),
		Stream:      stream.Bytes(),

		GEHistory:     append([]GESample(nil), st.geHistory...),
		Outcomes:      append([]bool(nil), st.outcomes...),
		GEEps:         st.geEps,
		AutoRollbacks: st.autoRollbacks,
	}
	if len(st.versionGE) > 0 {
		cp.VersionGE = make(map[int]float64, len(st.versionGE))
		for v, ge := range st.versionGE {
			cp.VersionGE[v] = ge
		}
	}
	st.mu.Unlock()

	doc, err := json.Marshal(cp)
	if err != nil {
		m.met.checkpoints.With("error").Inc()
		return fmt.Errorf("online: encoding checkpoint %q: %w", st.name, err)
	}
	if err := atomicWrite(checkpointPath(m.cfg.CheckpointDir, st.name), doc); err != nil {
		m.met.checkpoints.With("error").Inc()
		return fmt.Errorf("online: writing checkpoint %q: %w", st.name, err)
	}
	m.met.checkpoints.With("ok").Inc()
	m.cfg.Logger.Debug("online stream checkpointed",
		"model", st.name, "rows", cp.Seen, "reservoir", len(cp.Reservoir))
	return nil
}

// removeCheckpoint deletes a dropped stream's sidecar (best effort).
func (m *Manager) removeCheckpoint(name string) {
	if m.cfg.CheckpointDir == "" {
		return
	}
	_ = os.Remove(checkpointPath(m.cfg.CheckpointDir, name))
}

// loadCheckpoints restores every parseable sidecar in the checkpoint
// directory (creating it when absent). Unparseable sidecars are logged
// and skipped, never fatal.
func (m *Manager) loadCheckpoints() error {
	dir := m.cfg.CheckpointDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("online: creating checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("online: reading checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), checkpointSuffix) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		st, err := m.loadCheckpoint(path)
		if err != nil {
			m.cfg.Logger.Warn("online checkpoint skipped", "path", path, "err", err)
			continue
		}
		m.streams[st.name] = st
		m.met.reservoir.Add(float64(len(st.reservoir)))
		m.cfg.Logger.Info("online stream resumed",
			"model", st.name, "rows", st.sm.Count(), "reservoir", len(st.reservoir))
	}
	return nil
}

// loadCheckpoint parses one sidecar into a live stream. The reservoir
// RNG is re-derived from the configured seed (its position is not
// state worth persisting: Seen is restored, so replacement
// probabilities stay correct, the sample just continues with a fresh
// random tape).
func (m *Manager) loadCheckpoint(path string) (*Stream, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp streamCheckpoint
	if err := json.Unmarshal(doc, &cp); err != nil {
		return nil, fmt.Errorf("decoding: %w", err)
	}
	if cp.Format != checkpointFormat {
		return nil, fmt.Errorf("checkpoint format %d, want %d", cp.Format, checkpointFormat)
	}
	if cp.Name == "" {
		return nil, fmt.Errorf("checkpoint missing model name")
	}
	sm, err := core.LoadStreamMiner(bytes.NewReader(cp.Stream))
	if err != nil {
		return nil, fmt.Errorf("restoring stream: %w", err)
	}
	if sm.Decay() != cp.Decay {
		return nil, fmt.Errorf("checkpoint decay %v disagrees with stream decay %v", cp.Decay, sm.Decay())
	}
	if cp.Seen < 0 || cp.Seen < len(cp.Reservoir) {
		return nil, fmt.Errorf("checkpoint seen %d below reservoir size %d", cp.Seen, len(cp.Reservoir))
	}
	for i, row := range cp.Reservoir {
		if len(row) != sm.Width() {
			return nil, fmt.Errorf("reservoir row %d has width %d, stream has %d", i, len(row), sm.Width())
		}
	}
	st := m.newStream(cp.Name, cp.Decay)
	st.sm = sm
	st.seen = cp.Seen
	st.republishes = cp.Republishes
	st.promotions = cp.Promotions
	st.rejections = cp.Rejections
	st.lastVersion = cp.LastVersion
	st.lastCandGE = cp.LastCandGE
	st.lastServedGE = cp.LastServGE
	if len(cp.Reservoir) > m.cfg.ReservoirSize {
		cp.Reservoir = cp.Reservoir[:m.cfg.ReservoirSize]
	}
	st.reservoir = cp.Reservoir
	if n := len(cp.GEHistory); n > m.cfg.GEHistorySize {
		cp.GEHistory = cp.GEHistory[n-m.cfg.GEHistorySize:]
	}
	st.geHistory = cp.GEHistory
	if n := len(cp.Outcomes); n > outcomeWindow {
		cp.Outcomes = cp.Outcomes[n-outcomeWindow:]
	}
	st.outcomes = cp.Outcomes
	for v, ge := range cp.VersionGE {
		if v > 0 {
			st.versionGE[v] = ge
		}
	}
	st.geEps = cp.GEEps
	st.autoRollbacks = cp.AutoRollbacks
	return st, nil
}

// atomicWrite lands doc at path via the tmp+fsync+rename+dir-sync
// discipline shared with the store's snapshot writer.
func atomicWrite(path string, doc []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(doc); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
