package dataset

import (
	"math"
	"math/rand"

	"ratiorules/internal/matrix"
)

// NBASeed is the fixed seed all experiments use for the synthetic `nba`
// dataset, so every figure and table in EXPERIMENTS.md is reproducible.
const NBASeed = 19920612

// NBAAttrs lists the 12 per-player season statistics, matching the fields
// of the paper's Table 2.
var NBAAttrs = []string{
	"minutes played",
	"field goals",
	"goal attempts",
	"free throws",
	"throws attempted",
	"blocked shots",
	"fouls",
	"points",
	"offensive rebounds",
	"total rebounds",
	"assists",
	"steals",
}

// NBA generates the synthetic stand-in for the paper's `nba` dataset:
// 459 players × 12 statistics from the 1991-92 season.
//
// The generator is a three-factor model mirroring the interpretation the
// paper itself gives to the mined rules (Sec. 6.2):
//
//   - "court action" — playing time drives every counting stat, with the
//     average player scoring ≈ 1 point per 2 minutes (RR1's 2:1 ratio);
//   - "field position" — shooters score more and rebound less than big men
//     for the same minutes (RR2's negative points/rebounds correlation);
//   - "height" — rebounds and blocks trade off against assists and steals
//     (RR3).
//
// Four extreme players analogous to the paper's named outliers are planted
// at the end: a dominant shooting guard (Jordan-like: huge scoring, few
// rebounds), an extreme rebounder (Rodman-like), a tiny playmaker
// (Bogues-like) and a heavy-duty power forward (Malone-like). Labels name
// them so the visualization experiments can annotate the scatter plots.
func NBA() *Dataset {
	return NBAWithSeed(NBASeed)
}

// NBAWithSeed is NBA with an explicit seed, for sensitivity tests.
func NBAWithSeed(seed int64) *Dataset {
	const (
		regular = 455
		total   = 459
	)
	rng := rand.New(rand.NewSource(seed))
	x := matrix.NewDense(total, len(NBAAttrs))
	labels := make([]string, total)
	for i := 0; i < regular; i++ {
		labels[i] = playerName(rng)
		// Court action: a rough starters/bench mixture in (0, 1].
		var action float64
		if rng.Float64() < 0.4 {
			action = clamp(0.68+0.16*rng.NormFloat64(), 0.05, 1) // starter
		} else {
			action = clamp(0.22+0.13*rng.NormFloat64(), 0.02, 1) // bench
		}
		// Field position: +1 pure guard, −1 pure big man.
		position := clamp(rng.NormFloat64()*0.6, -1.3, 1.3)
		// Height: anti-correlated with guard-ness plus its own variation.
		height := clamp(-0.6*position+0.5*rng.NormFloat64(), -1.4, 1.4)
		x.SetRow(i, nbaRow(rng, action, position, height, 1, 1))
	}
	// Planted extremes, mirroring the paper's Sec. 6.2 narrative.
	labels[455] = "Jordan" // most active player in almost every category
	x.SetRow(455, nbaRow(rng, 1.00, 1.05, -0.9, 1.35, 0.45))
	labels[456] = "Rodman" // extreme rebounder: modest scoring, huge boards
	x.SetRow(456, nbaRow(rng, 0.92, -1.45, 1.5, 0.55, 2.2))
	labels[457] = "Bogues" // 5'3": assists and steals, no rebounds/blocks
	x.SetRow(457, nbaRow(rng, 0.78, 1.3, -1.7, 0.75, 0.3))
	labels[458] = "Malone" // 6'8" power forward workhorse
	x.SetRow(458, nbaRow(rng, 0.97, -0.9, 1.2, 1.1, 1.3))
	return &Dataset{Name: "nba", Attrs: NBAAttrs, Labels: labels, X: x}
}

// nbaRow synthesizes one stat line from the latent factors. scoring scales
// offensive output beyond what position implies (star quality); rebounding
// does the same for board work (the planted Rodman). Multiplicative noise
// is clipped at ±2.8σ so planted extremes stay extreme against 455 draws.
func nbaRow(rng *rand.Rand, action, position, height, scoring, rebounding float64) []float64 {
	noise := func(sd float64) float64 { return 1 + sd*clamp(rng.NormFloat64(), -2.8, 2.8) }
	pos := func(v float64) float64 { return math.Max(0, v) }

	minutes := pos(3080 * action * noise(0.06))
	// Shooting volume: guards and stars shoot more per minute. The base
	// rates put the average player at ≈ 1 point per 2 minutes, the ratio
	// the paper reads off RR1.
	shotRate := (1 + 0.35*position) * scoring
	fieldGoals := pos(0.19 * minutes * shotRate * noise(0.10))
	goalAttempts := pos(fieldGoals * 2.1 * noise(0.05))
	freeThrows := pos(0.075 * minutes * shotRate * noise(0.15))
	throwsAttempted := pos(freeThrows * 1.33 * noise(0.05))
	blocked := pos(0.022 * minutes * (1 + 1.3*height) * noise(0.25))
	fouls := pos(0.085 * minutes * (1 - 0.15*position) * noise(0.12))
	points := pos(2*fieldGoals + freeThrows + 0.12*fieldGoals*pos(position)*noise(0.3))
	offReb := pos(0.032 * minutes * (1 + 1.3*height - 0.35*position) * rebounding * noise(0.20))
	totReb := pos(offReb*3.1*noise(0.08) + 0.01*minutes*rebounding)
	assists := pos(0.075 * minutes * (1 + 1.0*position - 0.8*height) * noise(0.15))
	steals := pos(0.028 * minutes * (1 + 0.55*position - 0.5*height) * noise(0.18))

	return []float64{
		minutes, fieldGoals, goalAttempts, freeThrows, throwsAttempted,
		blocked, fouls, points, offReb, totReb, assists, steals,
	}
}

// playerName produces deterministic synthetic names.
var nbaFirst = []string{"Alex", "Chris", "Jordan", "Sam", "Taylor", "Marcus", "Derek", "Tony", "Luis", "Kevin"}
var nbaLast = []string{"Smith", "Brown", "Lee", "Walker", "Hill", "Young", "Allen", "Scott", "Reed", "Cruz"}

func playerName(rng *rand.Rand) string {
	return nbaFirst[rng.Intn(len(nbaFirst))] + " " + nbaLast[rng.Intn(len(nbaLast))]
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
