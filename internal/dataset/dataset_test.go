package dataset

import (
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"ratiorules/internal/eigen"
	"ratiorules/internal/matrix"
	"ratiorules/internal/stats"
)

func tiny() *Dataset {
	return &Dataset{
		Name:   "tiny",
		Attrs:  []string{"a", "b"},
		Labels: []string{"r0", "r1", "r2", "r3"},
		X: matrix.MustFromRows([][]float64{
			{1, 10}, {2, 20}, {3, 30}, {4, 40},
		}),
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := tiny()
	if d.Rows() != 4 || d.Cols() != 2 {
		t.Fatalf("dims = %d×%d, want 4×2", d.Rows(), d.Cols())
	}
	if d.Label(1) != "r1" {
		t.Errorf("Label(1) = %q", d.Label(1))
	}
	if d.Label(99) != "row99" {
		t.Errorf("Label(99) = %q, want fallback", d.Label(99))
	}
	unlabeled := &Dataset{X: matrix.NewDense(2, 1)}
	if unlabeled.Label(0) != "row0" {
		t.Errorf("unlabeled Label(0) = %q", unlabeled.Label(0))
	}
}

func TestSplitDeterministicAndComplete(t *testing.T) {
	d := tiny()
	train, test, err := d.Split(0.75, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Rows() != 3 || test.Rows() != 1 {
		t.Fatalf("split sizes %d/%d, want 3/1", train.Rows(), test.Rows())
	}
	// Deterministic: same seed, same split.
	train2, test2, err := d.Split(0.75, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(train.X, train2.X, 0) || !matrix.EqualApprox(test.X, test2.X, 0) {
		t.Error("same seed must give the same split")
	}
	// All rows accounted for: values 1..4 partitioned.
	seen := map[float64]bool{}
	for i := 0; i < train.Rows(); i++ {
		seen[train.X.At(i, 0)] = true
	}
	for i := 0; i < test.Rows(); i++ {
		v := test.X.At(i, 0)
		if seen[v] {
			t.Errorf("row with a=%v in both sides", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("split lost rows: %d of 4 present", len(seen))
	}
	// Labels follow their rows.
	for i := 0; i < train.Rows(); i++ {
		wantLabel := map[float64]string{1: "r0", 2: "r1", 3: "r2", 4: "r3"}[train.X.At(i, 0)]
		if train.Labels[i] != wantLabel {
			t.Errorf("label %q does not follow row (want %q)", train.Labels[i], wantLabel)
		}
	}
}

func TestSplitValidation(t *testing.T) {
	d := tiny()
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := d.Split(frac, 1); err == nil {
			t.Errorf("Split(%v) must fail", frac)
		}
	}
	// A single row cannot be split into two non-empty sides.
	small := &Dataset{Attrs: []string{"a"}, X: matrix.MustFromRows([][]float64{{1}})}
	if _, _, err := small.Split(0.5, 1); err == nil {
		t.Error("split of one row must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := tiny()
	var buf strings.Builder
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("tiny", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(got.X, d.X, 0) {
		t.Error("matrix did not round-trip")
	}
	if len(got.Attrs) != 2 || got.Attrs[1] != "b" {
		t.Errorf("attrs = %v", got.Attrs)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad number": "a,b\n1,x\n",
		"ragged":     "a,b\n1,2\n3\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV("x", strings.NewReader(in)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestCSVSourceStreams(t *testing.T) {
	in := "a,b\n1,2\n3,4\n"
	src, err := NewCSVSource(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if src.Width() != 2 {
		t.Fatalf("Width = %d, want 2", src.Width())
	}
	row, err := src.Next()
	if err != nil || row[0] != 1 || row[1] != 2 {
		t.Fatalf("first row = %v, %v", row, err)
	}
	row, err = src.Next()
	if err != nil || row[0] != 3 || row[1] != 4 {
		t.Fatalf("second row = %v, %v", row, err)
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestCSVSourceErrors(t *testing.T) {
	if _, err := NewCSVSource(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	src, err := NewCSVSource(strings.NewReader("a,b\n1,nope\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil {
		t.Error("non-numeric cell must fail")
	}
}

func TestNBAShape(t *testing.T) {
	d := NBA()
	if d.Rows() != 459 || d.Cols() != 12 {
		t.Fatalf("nba dims = %d×%d, want 459×12", d.Rows(), d.Cols())
	}
	if len(d.Attrs) != 12 || len(d.Labels) != 459 {
		t.Fatalf("attrs/labels = %d/%d", len(d.Attrs), len(d.Labels))
	}
	// Non-negative stats, realistic scales.
	minMax := func(col int) (lo, hi float64) {
		c := d.X.Col(col)
		lo, hi = c[0], c[0]
		for _, v := range c {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi
	}
	for j := 0; j < 12; j++ {
		lo, _ := minMax(j)
		if lo < 0 {
			t.Errorf("column %q has negative value %v", d.Attrs[j], lo)
		}
	}
	if _, hi := minMax(0); hi < 2500 || hi > 4000 {
		t.Errorf("max minutes = %v, want a starter-level 2500-4000", hi)
	}
	if _, hi := minMax(7); hi < 1800 {
		t.Errorf("max points = %v, want a star-level 1800+", hi)
	}
	// Planted outliers are labeled.
	for i, want := range map[int]string{455: "Jordan", 456: "Rodman", 457: "Bogues", 458: "Malone"} {
		if d.Labels[i] != want {
			t.Errorf("label[%d] = %q, want %q", i, d.Labels[i], want)
		}
	}
	// Deterministic.
	if !matrix.EqualApprox(d.X, NBA().X, 0) {
		t.Error("NBA() must be deterministic")
	}
	if matrix.EqualApprox(d.X, NBAWithSeed(1).X, 1e-9) {
		t.Error("different seeds must differ")
	}
}

func TestNBAPlantedExtremes(t *testing.T) {
	d := NBA()
	points, rebounds := d.X.Col(7), d.X.Col(9)
	assists := d.X.Col(10)
	// Jordan (455) leads scoring; Rodman (456) leads rebounding.
	for i := 0; i < 455; i++ {
		if points[i] > points[455] {
			t.Fatalf("regular player %d out-scores the planted Jordan: %v > %v", i, points[i], points[455])
		}
		if rebounds[i] > rebounds[456] {
			t.Fatalf("regular player %d out-rebounds the planted Rodman: %v > %v", i, rebounds[i], rebounds[456])
		}
	}
	// Rodman rebounds much more than he scores relative to Jordan.
	if rebounds[456] < 2*rebounds[455] {
		t.Errorf("Rodman rebounds %v vs Jordan %v: want a big gap", rebounds[456], rebounds[455])
	}
	// Bogues: high assists, negligible rebounds for his minutes.
	if assists[457] < 400 {
		t.Errorf("Bogues assists = %v, want playmaker volume", assists[457])
	}
}

func TestBaseballShape(t *testing.T) {
	d := Baseball()
	if d.Rows() != 1574 || d.Cols() != 17 {
		t.Fatalf("baseball dims = %d×%d, want 1574×17", d.Rows(), d.Cols())
	}
	// Batting averages live in a plausible band.
	avg := d.X.Col(12)
	for i, v := range avg {
		if v < 0.1 || v > 0.4 {
			t.Fatalf("row %d batting average %v outside [0.1, 0.4]", i, v)
		}
	}
	// Identity: total bases >= hits (every hit is at least a single).
	hits, tb := d.X.Col(3), d.X.Col(16)
	for i := range hits {
		if tb[i] < hits[i]-1e-9 {
			t.Fatalf("row %d total bases %v < hits %v", i, tb[i], hits[i])
		}
	}
	if !matrix.EqualApprox(d.X, Baseball().X, 0) {
		t.Error("Baseball() must be deterministic")
	}
}

func TestAbaloneShape(t *testing.T) {
	d := Abalone()
	if d.Rows() != 4177 || d.Cols() != 7 {
		t.Fatalf("abalone dims = %d×%d, want 4177×7", d.Rows(), d.Cols())
	}
	for j := 0; j < 7; j++ {
		for _, v := range d.X.Col(j) {
			if v < 0 {
				t.Fatalf("column %q negative", d.Attrs[j])
			}
		}
	}
	// Diameter < length for essentially all specimens.
	length, diam := d.X.Col(0), d.X.Col(1)
	bad := 0
	for i := range length {
		if diam[i] > length[i] {
			bad++
		}
	}
	if bad > 40 {
		t.Errorf("%d of %d specimens have diameter > length", bad, len(length))
	}
	if !matrix.EqualApprox(d.X, Abalone().X, 0) {
		t.Error("Abalone() must be deterministic")
	}
}

// The substitution argument of DESIGN.md §3 rests on the synthetic
// datasets reproducing the eigenstructure the experiments exercise. These
// tests pin those structural claims down.

func TestAbaloneNearRankOne(t *testing.T) {
	d := Abalone()
	acc := stats.NewCovAccumulator(d.Cols())
	for i := 0; i < d.Rows(); i++ {
		if err := acc.Push(d.X.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	scatter, err := acc.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eigen.SymEig(scatter)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, l := range sys.Values {
		total += l
	}
	if share := sys.Values[0] / total; share < 0.9 {
		t.Errorf("abalone top-eigenvalue share = %v, want >= 0.9 (near rank one)", share)
	}
	// The dominant direction is all-positive: a pure size factor.
	for j, v := range sys.Vectors.Col(0) {
		if v < 0 {
			t.Errorf("abalone RR1[%d] = %v, want all-positive size factor", j, v)
		}
	}
}

func TestBaseballPlayingTimeDominates(t *testing.T) {
	d := Baseball()
	acc := stats.NewCovAccumulator(d.Cols())
	for i := 0; i < d.Rows(); i++ {
		if err := acc.Push(d.X.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	scatter, err := acc.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eigen.SymEig(scatter)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, l := range sys.Values {
		total += l
	}
	if share := sys.Values[0] / total; share < 0.8 {
		t.Errorf("baseball top share = %v, want playing time to dominate", share)
	}
	// The largest coefficients of RR1 are the volume stats: at-bats and
	// plate appearances (columns 1 and 15).
	rr1 := sys.Vectors.Col(0)
	maxJ := 0
	for j, v := range rr1 {
		if math.Abs(v) > math.Abs(rr1[maxJ]) {
			maxJ = j
		}
	}
	if maxJ != 1 && maxJ != 15 {
		t.Errorf("baseball RR1 dominated by column %d (%s), want at-bats or plate appearances",
			maxJ, d.Attrs[maxJ])
	}
}

func TestCSVSourceHeader(t *testing.T) {
	src, err := NewCSVSource(strings.NewReader("a,b\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	h := src.Header()
	if len(h) != 2 || h[0] != "a" || h[1] != "b" {
		t.Errorf("Header = %v", h)
	}
	h[0] = "mutated"
	if src.Header()[0] != "a" {
		t.Error("Header must return a copy")
	}
}
