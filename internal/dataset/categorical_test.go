package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"ratiorules/internal/core"
)

func mixedSchema() []Field {
	return []Field{
		{Name: "segment", Categorical: true},
		{Name: "bread"},
		{Name: "butter"},
	}
}

func TestEncoderFitEncodeDecode(t *testing.T) {
	enc := NewCategoricalEncoder(mixedSchema())
	records := [][]string{
		{"family", "4", "2"},
		{"single", "1", "0.5"},
		{"family", "5", "2.5"},
	}
	if err := enc.Fit(records); err != nil {
		t.Fatal(err)
	}
	if enc.Width() != 4 { // 2 levels + 2 numerics
		t.Fatalf("Width = %d, want 4", enc.Width())
	}
	attrs := enc.Attrs()
	want := []string{"segment=family", "segment=single", "bread", "butter"}
	for i, w := range want {
		if attrs[i] != w {
			t.Errorf("attrs[%d] = %q, want %q", i, attrs[i], w)
		}
	}
	row, err := enc.Encode([]string{"single", "1", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 0 || row[1] != 1 || row[2] != 1 || row[3] != 0.5 {
		t.Errorf("Encode = %v", row)
	}
	rec, err := enc.Decode(row)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != "single" || rec[1] != "1" || rec[2] != "0.5" {
		t.Errorf("Decode = %v", rec)
	}
}

func TestEncoderErrors(t *testing.T) {
	enc := NewCategoricalEncoder(mixedSchema())
	// Unfitted.
	if _, err := enc.Encode([]string{"family", "1", "2"}); !errors.Is(err, ErrSchema) {
		t.Errorf("unfitted Encode: err = %v, want ErrSchema", err)
	}
	if _, err := enc.Decode([]float64{1}); !errors.Is(err, ErrSchema) {
		t.Errorf("unfitted Decode: err = %v, want ErrSchema", err)
	}
	if _, _, err := enc.FieldColumns(0); !errors.Is(err, ErrSchema) {
		t.Errorf("unfitted FieldColumns: err = %v, want ErrSchema", err)
	}
	// Bad training data.
	if err := enc.Fit([][]string{{"a", "x", "1"}}); err == nil {
		t.Error("non-numeric numeric field must fail")
	}
	if err := enc.Fit([][]string{{"a", "1"}}); !errors.Is(err, ErrSchema) {
		t.Errorf("ragged record: err = %v, want ErrSchema", err)
	}
	// Fit properly, then bad encodes.
	if err := enc.Fit([][]string{{"family", "1", "2"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode([]string{"alien", "1", "2"}); !errors.Is(err, ErrUnknownLevel) {
		t.Errorf("unknown level: err = %v, want ErrUnknownLevel", err)
	}
	if _, err := enc.Encode([]string{"family", "x", "2"}); err == nil {
		t.Error("non-numeric encode must fail")
	}
	if _, err := enc.Encode([]string{"family"}); !errors.Is(err, ErrSchema) {
		t.Errorf("short record: err = %v, want ErrSchema", err)
	}
	if _, err := enc.Decode([]float64{1, 2}); !errors.Is(err, ErrSchema) {
		t.Errorf("short row: err = %v, want ErrSchema", err)
	}
	if _, _, err := enc.FieldColumns(9); !errors.Is(err, ErrSchema) {
		t.Errorf("bad field: err = %v, want ErrSchema", err)
	}
}

func TestFieldColumns(t *testing.T) {
	enc := NewCategoricalEncoder(mixedSchema())
	if err := enc.Fit([][]string{{"a", "1", "2"}, {"b", "3", "4"}, {"c", "5", "6"}}); err != nil {
		t.Fatal(err)
	}
	start, end, err := enc.FieldColumns(0)
	if err != nil || start != 0 || end != 3 {
		t.Errorf("segment columns = [%d,%d), %v; want [0,3)", start, end, err)
	}
	start, end, err = enc.FieldColumns(2)
	if err != nil || start != 4 || end != 5 {
		t.Errorf("butter columns = [%d,%d), %v; want [4,5)", start, end, err)
	}
}

// TestCategoricalRatioRules is the paper's future-work scenario end to
// end: mine Ratio Rules over one-hot encoded mixed data and use them to
// guess a hidden category from the numeric spendings.
func TestCategoricalRatioRules(t *testing.T) {
	// Families buy a lot of bread and butter; singles buy little.
	rng := rand.New(rand.NewSource(90))
	var records [][]string
	for i := 0; i < 600; i++ {
		if rng.Float64() < 0.5 {
			b := 4 + rng.Float64()*4
			records = append(records, []string{"family",
				fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", 0.5*b)})
		} else {
			b := 0.5 + rng.Float64()*1.5
			records = append(records, []string{"single",
				fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", 0.5*b)})
		}
	}
	enc := NewCategoricalEncoder(mixedSchema())
	ds, err := enc.EncodeAll("groceries", records)
	if err != nil {
		t.Fatal(err)
	}
	miner, err := core.NewMiner(core.WithAttrNames(ds.Attrs))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	// A new customer spent $6.50 on bread, $3.20 on butter; which segment?
	segStart, segEnd, err := enc.FieldColumns(0)
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{0, 0, 6.5, 3.2}
	holes := []int{segStart, segStart + 1}
	_ = segEnd
	filled, err := rules.FillRow(row, holes)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := enc.Decode(filled)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != "family" {
		t.Errorf("guessed segment %q for a big-basket customer, want family (scores %v)",
			rec[0], filled[segStart:segStart+2])
	}
	// And the converse for a small basket.
	filled, err = rules.FillRow([]float64{0, 0, 0.8, 0.4}, holes)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = enc.Decode(filled)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != "single" {
		t.Errorf("guessed segment %q for a small-basket customer, want single", rec[0])
	}
}

func TestEncodeAllAutoFits(t *testing.T) {
	enc := NewCategoricalEncoder([]Field{{Name: "color", Categorical: true}, {Name: "size"}})
	ds, err := enc.EncodeAll("d", [][]string{{"red", "1"}, {"blue", "2"}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Cols() != 3 {
		t.Errorf("Cols = %d, want 3", ds.Cols())
	}
	if ds.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", ds.Rows())
	}
	// Round-trip each record.
	for i, rec := range [][]string{{"red", "1"}, {"blue", "2"}} {
		got, err := enc.Decode(ds.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != rec[0] || got[1] != rec[1] {
			t.Errorf("record %d round-trip = %v, want %v", i, got, rec)
		}
	}
}

func TestDecodeFormatsNumbers(t *testing.T) {
	enc := NewCategoricalEncoder([]Field{{Name: "v"}})
	if err := enc.Fit([][]string{{"1.5"}}); err != nil {
		t.Fatal(err)
	}
	rec, err := enc.Decode([]float64{2.25})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := strconv.ParseFloat(rec[0], 64); v != 2.25 {
		t.Errorf("Decode numeric = %q", rec[0])
	}
}
