package dataset

import (
	"math"
	"math/rand"

	"ratiorules/internal/matrix"
)

// BaseballSeed is the fixed seed for the synthetic `baseball` dataset.
const BaseballSeed = 1574

// BaseballAttrs lists the 17 batting statistics of the paper's `baseball`
// dataset (MLB batting over four seasons).
var BaseballAttrs = []string{
	"games",
	"at-bats",
	"runs",
	"hits",
	"doubles",
	"triples",
	"home runs",
	"runs batted in",
	"walks",
	"strikeouts",
	"stolen bases",
	"caught stealing",
	"batting average",
	"on-base percentage",
	"slugging percentage",
	"plate appearances",
	"total bases",
}

// Baseball generates the synthetic stand-in for the paper's `baseball`
// dataset: 1574 player-seasons × 17 batting statistics.
//
// The latent structure is a playing-time factor (dominant: all counting
// stats scale with at-bats), a power-vs-contact contrast (home runs and
// strikeouts against batting average and stolen bases) and a speed factor
// (steals, triples, runs). Rate statistics (average, OBP, slugging) are
// derived from the counting stats exactly as their definitions dictate, so
// the generator preserves the real dataset's mixed-scale columns (counts
// in the hundreds alongside rates below one).
func Baseball() *Dataset {
	return BaseballWithSeed(BaseballSeed)
}

// BaseballWithSeed is Baseball with an explicit seed.
func BaseballWithSeed(seed int64) *Dataset {
	const n = 1574
	rng := rand.New(rand.NewSource(seed))
	x := matrix.NewDense(n, len(BaseballAttrs))
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = playerName(rng)
		// Playing time in (0, 1]: regulars and part-timers.
		var playtime float64
		if rng.Float64() < 0.45 {
			playtime = clamp(0.75+0.15*rng.NormFloat64(), 0.05, 1)
		} else {
			playtime = clamp(0.28+0.15*rng.NormFloat64(), 0.03, 1)
		}
		power := clamp(rng.NormFloat64()*0.7, -1.5, 1.8)
		speed := clamp(rng.NormFloat64()*0.7-0.25*power, -1.5, 1.8)
		x.SetRow(i, baseballRow(rng, playtime, power, speed))
	}
	return &Dataset{Name: "baseball", Attrs: BaseballAttrs, Labels: labels, X: x}
}

func baseballRow(rng *rand.Rand, playtime, power, speed float64) []float64 {
	noise := func(sd float64) float64 { return 1 + sd*rng.NormFloat64() }
	pos := func(v float64) float64 { return math.Max(0, v) }

	games := pos(158 * playtime * noise(0.05))
	atBats := pos(games * 3.6 * noise(0.06))
	// Contact hitters bat for average; power hitters trade average for
	// home runs and strikeouts.
	avg := clamp(0.258-0.016*power+0.022*rng.NormFloat64(), 0.130, 0.370)
	hits := pos(atBats * avg * noise(0.02))
	doubles := pos(hits * (0.17 + 0.02*power) * noise(0.12))
	triples := pos(hits * (0.018 + 0.02*pos(speed)) * noise(0.3))
	homeRuns := pos(atBats * (0.012 + 0.024*pos(power) - 0.004*pos(speed)) * noise(0.2))
	walks := pos(atBats * (0.095 + 0.02*power) * noise(0.12))
	strikeouts := pos(atBats * (0.14 + 0.05*power) * noise(0.12))
	stolen := pos(games * (0.04 + 0.22*pos(speed)) * noise(0.25))
	caught := pos(stolen * 0.38 * noise(0.25))
	runs := pos((hits*0.42 + walks*0.30 + stolen*0.25) * noise(0.08))
	rbi := pos((hits*0.40 + homeRuns*1.4) * noise(0.10))
	plateApp := atBats + walks
	singles := math.Max(0, hits-doubles-triples-homeRuns)
	totalBases := singles + 2*doubles + 3*triples + 4*homeRuns
	var obp, slg float64
	if plateApp > 0 {
		obp = (hits + walks) / plateApp
	}
	if atBats > 0 {
		slg = totalBases / atBats
	}

	return []float64{
		games, atBats, runs, hits, doubles, triples, homeRuns, rbi,
		walks, strikeouts, stolen, caught, avg, obp, slg, plateApp, totalBases,
	}
}
