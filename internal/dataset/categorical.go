package dataset

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"ratiorules/internal/matrix"
)

// The paper closes with: "Future research could focus on applying Ratio
// Rules to datasets that contain categorical data." This file implements
// that extension: a one-hot (dummy) encoder that maps mixed
// categorical/numeric records onto a purely numeric matrix the miner can
// consume, and decodes filled records back, choosing the highest-scoring
// level for each reconstructed categorical field.

// ErrUnknownLevel is returned when encoding meets a category level that
// was not present during Fit.
var ErrUnknownLevel = errors.New("dataset: unknown categorical level")

// ErrSchema is returned for records that do not match the encoder schema.
var ErrSchema = errors.New("dataset: record does not match schema")

// Field describes one column of a mixed record.
type Field struct {
	Name string
	// Categorical marks the field for one-hot expansion; otherwise the
	// field must parse as a float.
	Categorical bool
}

// CategoricalEncoder one-hot encodes mixed records. Construct with
// NewCategoricalEncoder, then Fit on training records before Encode.
type CategoricalEncoder struct {
	fields []Field
	levels [][]string       // per categorical field: sorted level names
	index  []map[string]int // per categorical field: level -> position
	attrs  []string         // expanded attribute names
	starts []int            // expanded start column per field
	width  int
}

// NewCategoricalEncoder returns an encoder for the given schema.
func NewCategoricalEncoder(fields []Field) *CategoricalEncoder {
	return &CategoricalEncoder{fields: append([]Field(nil), fields...)}
}

// Fit discovers the level set of every categorical field from the
// training records and freezes the expanded layout.
func (e *CategoricalEncoder) Fit(records [][]string) error {
	nf := len(e.fields)
	levelSets := make([]map[string]bool, nf)
	for i, f := range e.fields {
		if f.Categorical {
			levelSets[i] = map[string]bool{}
		}
	}
	for r, rec := range records {
		if len(rec) != nf {
			return fmt.Errorf("dataset: record %d has %d fields, want %d: %w", r, len(rec), nf, ErrSchema)
		}
		for i, f := range e.fields {
			if f.Categorical {
				levelSets[i][rec[i]] = true
				continue
			}
			if _, err := strconv.ParseFloat(rec[i], 64); err != nil {
				return fmt.Errorf("dataset: record %d field %q: %w", r, f.Name, err)
			}
		}
	}
	e.levels = make([][]string, nf)
	e.index = make([]map[string]int, nf)
	e.attrs = e.attrs[:0]
	e.starts = make([]int, nf)
	col := 0
	for i, f := range e.fields {
		e.starts[i] = col
		if !f.Categorical {
			e.attrs = append(e.attrs, f.Name)
			col++
			continue
		}
		lv := make([]string, 0, len(levelSets[i]))
		for l := range levelSets[i] {
			lv = append(lv, l)
		}
		sort.Strings(lv)
		if len(lv) == 0 {
			return fmt.Errorf("dataset: categorical field %q has no levels: %w", f.Name, ErrSchema)
		}
		e.levels[i] = lv
		e.index[i] = make(map[string]int, len(lv))
		for p, l := range lv {
			e.index[i][l] = p
			e.attrs = append(e.attrs, f.Name+"="+l)
		}
		col += len(lv)
	}
	e.width = col
	return nil
}

// Width reports the expanded numeric width (0 before Fit).
func (e *CategoricalEncoder) Width() int { return e.width }

// Attrs returns the expanded attribute names.
func (e *CategoricalEncoder) Attrs() []string {
	return append([]string(nil), e.attrs...)
}

// FieldColumns returns the expanded column range [start, end) of field i.
func (e *CategoricalEncoder) FieldColumns(i int) (start, end int, err error) {
	if e.width == 0 {
		return 0, 0, fmt.Errorf("dataset: encoder not fitted: %w", ErrSchema)
	}
	if i < 0 || i >= len(e.fields) {
		return 0, 0, fmt.Errorf("dataset: field %d out of range [0,%d): %w", i, len(e.fields), ErrSchema)
	}
	start = e.starts[i]
	if i+1 < len(e.fields) {
		end = e.starts[i+1]
	} else {
		end = e.width
	}
	return start, end, nil
}

// Encode maps one mixed record onto the expanded numeric row.
func (e *CategoricalEncoder) Encode(record []string) ([]float64, error) {
	if e.width == 0 {
		return nil, fmt.Errorf("dataset: encoder not fitted: %w", ErrSchema)
	}
	if len(record) != len(e.fields) {
		return nil, fmt.Errorf("dataset: record has %d fields, want %d: %w", len(record), len(e.fields), ErrSchema)
	}
	row := make([]float64, e.width)
	for i, f := range e.fields {
		if !f.Categorical {
			v, err := strconv.ParseFloat(record[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: field %q: %w", f.Name, err)
			}
			row[e.starts[i]] = v
			continue
		}
		p, ok := e.index[i][record[i]]
		if !ok {
			return nil, fmt.Errorf("dataset: field %q level %q: %w", f.Name, record[i], ErrUnknownLevel)
		}
		row[e.starts[i]+p] = 1
	}
	return row, nil
}

// EncodeAll encodes the records into a Dataset ready for mining.
func (e *CategoricalEncoder) EncodeAll(name string, records [][]string) (*Dataset, error) {
	if e.width == 0 {
		if err := e.Fit(records); err != nil {
			return nil, err
		}
	}
	x := matrix.NewDense(len(records), e.width)
	for i, rec := range records {
		row, err := e.Encode(rec)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		x.SetRow(i, row)
	}
	return &Dataset{Name: name, Attrs: e.Attrs(), X: x}, nil
}

// Decode maps an expanded numeric row (e.g. a reconstruction from
// Rules.FillRow) back to a mixed record: numeric fields are formatted,
// categorical fields take the level with the highest score.
func (e *CategoricalEncoder) Decode(row []float64) ([]string, error) {
	if e.width == 0 {
		return nil, fmt.Errorf("dataset: encoder not fitted: %w", ErrSchema)
	}
	if len(row) != e.width {
		return nil, fmt.Errorf("dataset: row width %d, want %d: %w", len(row), e.width, ErrSchema)
	}
	out := make([]string, len(e.fields))
	for i, f := range e.fields {
		start := e.starts[i]
		if !f.Categorical {
			out[i] = strconv.FormatFloat(row[start], 'g', -1, 64)
			continue
		}
		best, arg := row[start], 0
		for p := 1; p < len(e.levels[i]); p++ {
			if row[start+p] > best {
				best, arg = row[start+p], p
			}
		}
		out[i] = e.levels[i][arg]
	}
	return out, nil
}
