// Package dataset provides the data plumbing for the Ratio Rules
// experiments: an in-memory Dataset type, CSV reading/writing, a streaming
// row source for the single-pass miner, deterministic train/test splitting,
// and synthetic generators reproducing the statistical shape of the three
// real datasets evaluated in Korn et al. (VLDB 1998): `nba`, `baseball` and
// `abalone`.
//
// The original files are not redistributable (and the paper's URLs are long
// dead), so the generators build latent-factor models that preserve what
// the experiments actually exercise: the eigenstructure (one dominant
// "volume" axis plus a small number of contrast axes), realistic per-column
// scales, and a few extreme records for the outlier discussion. DESIGN.md
// documents each substitution.
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"ratiorules/internal/matrix"
)

// Dataset is a named data matrix with attribute names and optional row
// labels (used by the visualization experiments to tag famous players).
type Dataset struct {
	Name   string
	Attrs  []string
	Labels []string // optional, len == rows when present
	X      *matrix.Dense
}

// Rows reports the number of records.
func (d *Dataset) Rows() int { return d.X.Rows() }

// Cols reports the number of attributes.
func (d *Dataset) Cols() int { return d.X.Cols() }

// Label returns the row label, or "row<i>" when unlabeled.
func (d *Dataset) Label(i int) string {
	if i >= 0 && i < len(d.Labels) && d.Labels[i] != "" {
		return d.Labels[i]
	}
	return fmt.Sprintf("row%d", i)
}

// Split partitions the dataset's rows into a training and a testing matrix
// using a deterministic shuffle of the given seed. trainFrac is the
// fraction of rows assigned to training (the paper uses 0.9). Row labels
// follow the rows.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %v outside (0, 1)", trainFrac)
	}
	n := d.Rows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	cut := int(float64(n) * trainFrac)
	if cut < 1 || cut >= n {
		return nil, nil, fmt.Errorf("dataset: split of %d rows at fraction %v leaves an empty side", n, trainFrac)
	}
	mk := func(name string, rows []int) *Dataset {
		out := &Dataset{Name: name, Attrs: d.Attrs, X: d.X.SelectRows(rows)}
		if len(d.Labels) == n {
			out.Labels = make([]string, len(rows))
			for i, r := range rows {
				out.Labels[i] = d.Labels[r]
			}
		}
		return out
	}
	return mk(d.Name+"-train", idx[:cut]), mk(d.Name+"-test", idx[cut:]), nil
}

// WriteCSV writes the dataset with a header row of attribute names.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Attrs); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	rec := make([]string, d.Cols())
	for i := 0; i < d.Rows(); i++ {
		row := d.X.RawRow(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing: %w", err)
	}
	return nil
}

// ReadCSV parses a dataset written by WriteCSV (a header of attribute
// names followed by numeric rows).
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	var rows [][]float64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading line %d: %w", line, err)
		}
		row := make([]float64, len(rec))
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	x, err := matrix.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("dataset: assembling matrix: %w", err)
	}
	if x.Rows() > 0 && x.Cols() != len(header) {
		return nil, fmt.Errorf("dataset: %d header fields but %d data columns", len(header), x.Cols())
	}
	return &Dataset{Name: name, Attrs: header, X: x}, nil
}

// CSVSource streams numeric rows from a CSV reader without materializing
// the matrix, for single-pass mining of datasets larger than memory. It
// implements core.RowSource structurally (Width/Next).
type CSVSource struct {
	cr     *csv.Reader
	header []string
	row    []float64
	line   int
}

// NewCSVSource reads the header (to learn the width and attribute names)
// and prepares to stream the remaining rows.
func NewCSVSource(r io.Reader) (*CSVSource, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	return &CSVSource{cr: cr, header: header, row: make([]float64, len(header)), line: 1}, nil
}

// Width implements the row-source contract.
func (s *CSVSource) Width() int { return len(s.header) }

// Header returns the attribute names read from the first line.
func (s *CSVSource) Header() []string {
	return append([]string(nil), s.header...)
}

// Next returns the next row, reusing an internal buffer, or io.EOF.
func (s *CSVSource) Next() ([]float64, error) {
	rec, err := s.cr.Read()
	if errors.Is(err, io.EOF) {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV line %d: %w", s.line+1, err)
	}
	s.line++
	if len(rec) != len(s.header) {
		return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", s.line, len(rec), len(s.header))
	}
	for j, f := range rec {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d column %d: %w", s.line, j+1, err)
		}
		s.row[j] = v
	}
	return s.row, nil
}
