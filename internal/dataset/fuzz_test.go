package dataset

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics on arbitrary input and
// either returns a consistent dataset or an error.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("")
	f.Add("x\n\"unterminated")
	f.Add("a,b\n1\n2,3\n")
	f.Add("h1,h2,h3\n1,2,3\n4,5,6\n")
	f.Fuzz(func(t *testing.T, in string) {
		ds, err := ReadCSV("fuzz", strings.NewReader(in))
		if err != nil {
			return
		}
		if ds.Rows() > 0 && ds.Cols() != len(ds.Attrs) {
			t.Fatalf("inconsistent dataset: %d cols, %d attrs", ds.Cols(), len(ds.Attrs))
		}
	})
}

// FuzzCSVSource checks the streaming reader agrees with the batch reader
// on well-formed input and fails cleanly otherwise.
func FuzzCSVSource(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("a\nnope\n")
	f.Add("a,b\n1,2\n3\n")
	f.Fuzz(func(t *testing.T, in string) {
		src, err := NewCSVSource(strings.NewReader(in))
		if err != nil {
			return
		}
		streamed := 0
		for {
			row, err := src.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return // stream rejects what batch may also reject
			}
			if len(row) != src.Width() {
				t.Fatalf("row width %d, want %d", len(row), src.Width())
			}
			streamed++
		}
		// If streaming succeeded fully, batch reading must succeed too and
		// agree on the row count.
		ds, err := ReadCSV("fuzz", strings.NewReader(in))
		if err != nil {
			t.Fatalf("stream accepted but batch rejected: %v", err)
		}
		if ds.Rows() != streamed {
			t.Fatalf("batch read %d rows, stream read %d", ds.Rows(), streamed)
		}
	})
}
