package dataset

import (
	"math"
	"math/rand"

	"ratiorules/internal/matrix"
)

// AbaloneSeed is the fixed seed for the synthetic `abalone` dataset.
const AbaloneSeed = 4177

// AbaloneAttrs lists the 7 physical measurements of the UCI abalone
// dataset used in the paper.
var AbaloneAttrs = []string{
	"length",
	"diameter",
	"height",
	"whole weight",
	"shucked weight",
	"viscera weight",
	"shell weight",
}

// Abalone generates the synthetic stand-in for the paper's `abalone`
// dataset: 4177 specimens × 7 physical measurements.
//
// Real abalone measurements are famously close to rank one: a single
// latent "size" factor drives everything, with the linear dimensions
// proportional to size and the weights following a near-cubic allometric
// law. The generator reproduces exactly that structure (plus measurement
// noise), which is what makes the dataset the paper's best case for Ratio
// Rules against col-avgs.
func Abalone() *Dataset {
	return AbaloneWithSeed(AbaloneSeed)
}

// AbaloneWithSeed is Abalone with an explicit seed.
func AbaloneWithSeed(seed int64) *Dataset {
	const n = 4177
	rng := rand.New(rand.NewSource(seed))
	x := matrix.NewDense(n, len(AbaloneAttrs))
	for i := 0; i < n; i++ {
		// Size in (0.1, 1]: skewed toward adults like the UCI sample.
		size := clamp(0.62+0.20*rng.NormFloat64(), 0.08, 1.0)
		x.SetRow(i, abaloneRow(rng, size))
	}
	return &Dataset{Name: "abalone", Attrs: AbaloneAttrs, X: x}
}

func abaloneRow(rng *rand.Rand, size float64) []float64 {
	noise := func(sd float64) float64 { return 1 + sd*rng.NormFloat64() }
	pos := func(v float64) float64 { return math.Max(0, v) }

	length := pos(0.81 * size * noise(0.04))
	diameter := pos(length * 0.80 * noise(0.03))
	height := pos(length * 0.35 * noise(0.08))
	// Allometric weights: volume scales like the cube of linear size.
	whole := pos(2.55 * math.Pow(size, 2.9) * noise(0.08))
	shucked := pos(whole * 0.43 * noise(0.06))
	viscera := pos(whole * 0.22 * noise(0.08))
	shell := pos(whole * 0.28 * noise(0.07))

	return []float64{length, diameter, height, whole, shucked, viscera, shell}
}
