// Package linsolve provides direct linear-system solvers for the Ratio
// Rules hole-filling algorithm: LU factorization with partial pivoting for
// the exactly-specified case (Case 1, Eq. 6 of Korn et al., VLDB 1998) and
// Householder QR least squares as an alternative to the pseudo-inverse for
// the over-specified case (Case 2).
package linsolve

import (
	"errors"
	"fmt"
	"math"

	"ratiorules/internal/matrix"
)

// ErrSingular is returned when a system has no unique solution because the
// coefficient matrix is (numerically) singular.
var ErrSingular = errors.New("linsolve: matrix is singular")

// ErrShape is returned when operand shapes are incompatible with the
// requested operation.
var ErrShape = errors.New("linsolve: incompatible shapes")

// LU is an LU factorization P·A = L·U of a square matrix with partial
// pivoting, stored compactly.
type LU struct {
	lu   *matrix.Dense
	piv  []int
	sign float64 // determinant sign from row swaps
}

// FactorLU computes the LU factorization of the square matrix a with
// partial pivoting. It returns ErrSingular if a zero pivot is encountered.
func FactorLU(a *matrix.Dense) (*LU, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("linsolve: LU of %d×%d matrix: %w", n, c, ErrShape)
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below row k.
		p := k
		mx := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return nil, fmt.Errorf("linsolve: zero pivot at column %d: %w", k, ErrSingular)
		}
		if p != k {
			rp, rk := lu.RawRow(p), lu.RawRow(k)
			for j := range rp {
				rp[j], rk[j] = rk[j], rp[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.RawRow(i), lu.RawRow(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns the solution x of A·x = b for the factored matrix.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n, _ := f.lu.Dims()
	if len(b) != n {
		return nil, fmt.Errorf("linsolve: LU solve with rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	x := make([]float64, n)
	// Apply the permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		row := f.lu.RawRow(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.RawRow(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n, _ := f.lu.Dims()
	d := f.sign
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveSquare solves the square system A·x = b in one shot.
func SolveSquare(a *matrix.Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹ for a square non-singular matrix.
func Inverse(a *matrix.Dense) (*matrix.Dense, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("linsolve: inverse of %d×%d matrix: %w", n, c, ErrShape)
	}
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	inv := matrix.NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// QR is a Householder QR factorization A = Q·R of an m×n matrix with
// m >= n, stored compactly: the upper triangle holds R and the columns
// below the diagonal hold the Householder vectors.
type QR struct {
	qr    *matrix.Dense
	rdiag []float64
}

// FactorQR computes the QR factorization of a, which must have at least as
// many rows as columns.
func FactorQR(a *matrix.Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("linsolve: QR of %d×%d matrix needs rows >= cols: %w", m, n, ErrShape)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// FullRank reports whether R has no (numerically) zero diagonal entries.
func (f *QR) FullRank() bool {
	var mx float64
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > mx {
			mx = a
		}
	}
	tol := 1e-12 * mx
	for _, d := range f.rdiag {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing |A·x − b|₂.
// It returns ErrSingular if A is rank deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("linsolve: QR solve with rhs length %d, want %d: %w", len(b), m, ErrShape)
	}
	if !f.FullRank() {
		return nil, fmt.Errorf("linsolve: rank-deficient least squares: %w", ErrSingular)
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder reflectors to the right-hand side: y = Qᵗ·b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// SolveLeastSquares solves min |A·x − b|₂ in one shot via QR.
func SolveLeastSquares(a *matrix.Dense, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
