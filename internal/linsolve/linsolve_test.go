package linsolve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ratiorules/internal/matrix"
)

func TestSolveSquareKnown(t *testing.T) {
	a := matrix.MustFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveSquare(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(x, []float64{1, 3}, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveSquareNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a := matrix.MustFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveSquare(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(x, []float64{3, 2}, 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveSquareSingular(t *testing.T) {
	a := matrix.MustFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveSquare(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestFactorLUShape(t *testing.T) {
	if _, err := FactorLU(matrix.NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestLUSolveRHSLength(t *testing.T) {
	f, err := FactorLU(matrix.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestDet(t *testing.T) {
	tests := []struct {
		m    *matrix.Dense
		want float64
	}{
		{matrix.Identity(3), 1},
		{matrix.MustFromRows([][]float64{{2, 0}, {0, 3}}), 6},
		{matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}), -1},
		{matrix.MustFromRows([][]float64{{1, 2}, {3, 4}}), -2},
	}
	for _, tc := range tests {
		f, err := FactorLU(tc.m)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Det(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Det = %v, want %v", got, tc.want)
		}
	}
}

func TestInverse(t *testing.T) {
	a := matrix.MustFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MustFromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !matrix.EqualApprox(inv, want, 1e-12) {
		t.Errorf("Inverse = %v, want %v", inv, want)
	}
	if _, err := Inverse(matrix.NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
	if _, err := Inverse(matrix.NewDense(2, 2)); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestQRLeastSquaresLine(t *testing.T) {
	// Fit y = a + b·t through (0,1), (1,3), (2,5): exact a=1, b=2.
	a := matrix.MustFromRows([][]float64{{1, 0}, {1, 1}, {1, 2}})
	x, err := SolveLeastSquares(a, []float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(x, []float64{1, 2}, 1e-10) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestQRLeastSquaresInconsistent(t *testing.T) {
	// Constant fit through 1, 2, 6: mean 3.
	a := matrix.MustFromRows([][]float64{{1}, {1}, {1}})
	x, err := SolveLeastSquares(a, []float64{1, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(x, []float64{3}, 1e-10) {
		t.Errorf("x = %v, want [3]", x)
	}
}

func TestQRShapeAndRank(t *testing.T) {
	if _, err := FactorQR(matrix.NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("wide matrix: err = %v, want ErrShape", err)
	}
	// Rank-deficient tall matrix.
	a := matrix.MustFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.FullRank() {
		t.Error("rank-deficient matrix reported full rank")
	}
	if _, err := f.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestQRSolveRHSLength(t *testing.T) {
	f, err := FactorQR(matrix.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

// Property: LU solves random well-conditioned systems to high accuracy.
func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomDiagDominant(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b, err := matrix.MulVec(a, xTrue)
		if err != nil {
			return false
		}
		x, err := SolveSquare(a, b)
		if err != nil {
			return false
		}
		return matrix.EqualApproxVec(x, xTrue, 1e-9*(1+matrix.Norm2(xTrue)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: QR least-squares residual is orthogonal to the column space.
func TestQRResidualOrthogonalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + 1 + rng.Intn(6)
		a := matrix.NewDense(m, n)
		for i := 0; i < m; i++ {
			row := a.RawRow(i)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			// Random Gaussian matrices are almost surely full rank; treat
			// rank deficiency as a (vanishingly unlikely) skip.
			return errors.Is(err, ErrSingular)
		}
		ax, err := matrix.MulVec(a, x)
		if err != nil {
			return false
		}
		r := matrix.SubVec(b, ax)
		// Aᵗ·r must vanish.
		atr, err := matrix.MulVec(a.T(), r)
		if err != nil {
			return false
		}
		return matrix.Norm2(atr) <= 1e-9*(1+matrix.Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: LU and QR agree on square non-singular systems.
func TestLUQRAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err := SolveSquare(a, b)
		if err != nil {
			return false
		}
		x2, err := SolveLeastSquares(a, b)
		if err != nil {
			return false
		}
		return matrix.EqualApproxVec(x1, x2, 1e-8*(1+matrix.Norm2(x1)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomDiagDominant builds a well-conditioned random matrix by adding n to
// the diagonal of a random Gaussian matrix.
func randomDiagDominant(rng *rand.Rand, n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		row := a.RawRow(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[i] += float64(n) + 1
	}
	return a
}

func BenchmarkLUSolve50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDiagDominant(rng, 50)
	rhs := make([]float64, 50)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSquare(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRSolve100x20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.NewDense(100, 20)
	for i := 0; i < 100; i++ {
		row := a.RawRow(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	rhs := make([]float64, 100)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
