package assoc

import (
	"fmt"
	"math"
)

// The paper's related work (Sec. 2) notes that beyond support/confidence,
// "recent alternative criteria include the chi-square test [Brin et al.]
// and probability-based measures". This file supplies those measures so
// the Boolean baseline can rank rules the way the literature the paper
// cites does: lift (interest) and the 2×2 chi-square statistic.

// Contingency counts the four cells of the antecedent/consequent 2×2
// table over a transaction set.
type Contingency struct {
	Both    int // antecedent ∧ consequent
	AntOnly int // antecedent ∧ ¬consequent
	ConOnly int // ¬antecedent ∧ consequent
	Neither int
}

// Total returns the number of transactions tallied.
func (c Contingency) Total() int { return c.Both + c.AntOnly + c.ConOnly + c.Neither }

// Tally builds the contingency table of a rule over transactions.
func Tally(transactions []Itemset, antecedent Itemset, consequent int) Contingency {
	var c Contingency
	for _, t := range transactions {
		hasAnt := antecedent.isSubsetOf(t)
		hasCon := t.contains(consequent)
		switch {
		case hasAnt && hasCon:
			c.Both++
		case hasAnt:
			c.AntOnly++
		case hasCon:
			c.ConOnly++
		default:
			c.Neither++
		}
	}
	return c
}

// Lift returns P(ant ∧ con) / (P(ant)·P(con)) — the "interest" measure.
// 1 means independence; above 1, positive association. It returns an
// error when either side never occurs (the measure is undefined).
func (c Contingency) Lift() (float64, error) {
	n := float64(c.Total())
	if n == 0 {
		return 0, fmt.Errorf("assoc: lift of empty table")
	}
	pAnt := float64(c.Both+c.AntOnly) / n
	pCon := float64(c.Both+c.ConOnly) / n
	if pAnt == 0 || pCon == 0 {
		return 0, fmt.Errorf("assoc: lift undefined with marginal zero (pAnt=%v, pCon=%v)", pAnt, pCon)
	}
	return (float64(c.Both) / n) / (pAnt * pCon), nil
}

// ChiSquare returns the 2×2 chi-square statistic of the table (1 degree
// of freedom); values above ≈3.84 reject independence at the 5% level.
// It returns an error when any marginal is zero.
func (c Contingency) ChiSquare() (float64, error) {
	n := float64(c.Total())
	if n == 0 {
		return 0, fmt.Errorf("assoc: chi-square of empty table")
	}
	rowAnt := float64(c.Both + c.AntOnly)
	rowNot := float64(c.ConOnly + c.Neither)
	colCon := float64(c.Both + c.ConOnly)
	colNot := float64(c.AntOnly + c.Neither)
	if rowAnt == 0 || rowNot == 0 || colCon == 0 || colNot == 0 {
		return 0, fmt.Errorf("assoc: chi-square undefined with a zero marginal")
	}
	observed := [4]float64{float64(c.Both), float64(c.AntOnly), float64(c.ConOnly), float64(c.Neither)}
	expected := [4]float64{
		rowAnt * colCon / n,
		rowAnt * colNot / n,
		rowNot * colCon / n,
		rowNot * colNot / n,
	}
	var chi float64
	for i := range observed {
		d := observed[i] - expected[i]
		chi += d * d / expected[i]
	}
	if math.IsNaN(chi) {
		return 0, fmt.Errorf("assoc: chi-square degenerate")
	}
	return chi, nil
}

// ScoredRule augments a Boolean rule with the alternative interest
// measures.
type ScoredRule struct {
	BoolRule
	Lift      float64
	ChiSquare float64
}

// ScoreRules computes lift and chi-square for each rule over the
// transactions. Rules whose measures are undefined are skipped.
func ScoreRules(transactions []Itemset, rules []BoolRule) []ScoredRule {
	out := make([]ScoredRule, 0, len(rules))
	for _, r := range rules {
		c := Tally(transactions, r.Antecedent, r.Consequent)
		lift, err := c.Lift()
		if err != nil {
			continue
		}
		chi, err := c.ChiSquare()
		if err != nil {
			continue
		}
		out = append(out, ScoredRule{BoolRule: r, Lift: lift, ChiSquare: chi})
	}
	return out
}
