package assoc

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ratiorules/internal/matrix"
)

// breadButter builds the Fig. 12 setting: bread spend in (0, 7] with
// butter ≈ 0.72 × bread.
func breadButter(rng *rand.Rand, n int) *matrix.Dense {
	x := matrix.NewDense(n, 2)
	for i := 0; i < n; i++ {
		b := 0.5 + rng.Float64()*6.5
		x.SetRow(i, []float64{b, 0.72*b + 0.2*rng.NormFloat64()})
	}
	return x
}

func TestMineQuantitativeInterpolates(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	x := breadButter(rng, 500)
	model, err := MineQuantitative(x, QuantConfig{
		Bins: 5, MinSupport: 0.05, MinConfidence: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Rules) == 0 {
		t.Fatal("no rules mined from strongly correlated data")
	}
	// Inside the training cloud, prediction fires and lands near truth.
	val, fired, err := model.Predict([]float64{3.5, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("no rule fired inside the training region")
	}
	want := 0.72 * 3.5
	if math.Abs(val-want) > 1.2 {
		t.Errorf("predicted butter %v, want ≈ %v (interval-midpoint coarse)", val, want)
	}
}

func TestQuantitativeCannotExtrapolateFig12(t *testing.T) {
	// The paper's Fig. 12 punchline: for bread = $8.50 (outside every
	// bounding rectangle) quantitative association rules have no rule that
	// can fire.
	rng := rand.New(rand.NewSource(51))
	x := breadButter(rng, 500) // training bread stays below 7
	model, err := MineQuantitative(x, QuantConfig{
		Bins: 5, MinSupport: 0.05, MinConfidence: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, fired, err := model.Predict([]float64{8.5, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("quantitative rules fired outside the training range; Fig. 12 expects no rule to fire")
	}
}

func TestMineQuantitativeValidation(t *testing.T) {
	x := matrix.MustFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := MineQuantitative(x, QuantConfig{Bins: 1, MinSupport: 0.1, MinConfidence: 0.5}); err == nil {
		t.Error("1 bin must fail")
	}
	if _, err := MineQuantitative(matrix.NewDense(0, 2), QuantConfig{Bins: 2, MinSupport: 0.1, MinConfidence: 0.5}); err == nil {
		t.Error("empty matrix must fail")
	}
}

func TestPredictValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	x := breadButter(rng, 100)
	model, err := MineQuantitative(x, QuantConfig{Bins: 3, MinSupport: 0.05, MinConfidence: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := model.Predict([]float64{1}, 1); err == nil {
		t.Error("wrong width must fail")
	}
	if _, _, err := model.Predict([]float64{1, 2}, 5); err == nil {
		t.Error("bad target must fail")
	}
}

func TestEquiDepthCuts(t *testing.T) {
	cuts := equiDepthCuts([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if len(cuts) != 5 {
		t.Fatalf("got %d cuts, want 5", len(cuts))
	}
	for b := 1; b < len(cuts); b++ {
		if cuts[b] <= cuts[b-1] {
			t.Errorf("cuts not strictly increasing: %v", cuts)
		}
	}
	// Every value must land in some bin.
	if cuts[0] > 1 || cuts[4] <= 8 {
		t.Errorf("cuts %v do not span the data", cuts)
	}
}

func TestEquiDepthCutsWithTies(t *testing.T) {
	cuts := equiDepthCuts([]float64{5, 5, 5, 5, 5, 5}, 3)
	for b := 1; b < len(cuts); b++ {
		if cuts[b] <= cuts[b-1] {
			t.Fatalf("tied data produced non-increasing cuts: %v", cuts)
		}
	}
}

func TestBinOfCoversRange(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	x := breadButter(rng, 200)
	model, err := MineQuantitative(x, QuantConfig{Bins: 4, MinSupport: 0.05, MinConfidence: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		for j := 0; j < 2; j++ {
			bin := model.binOf(j, x.At(i, j))
			if bin < 0 || bin >= 4 {
				t.Fatalf("value %v binned to %d", x.At(i, j), bin)
			}
			iv := model.interval(j, bin)
			if !iv.Contains(x.At(i, j)) {
				t.Fatalf("bin %d interval %+v does not contain %v", bin, iv, x.At(i, j))
			}
		}
	}
}

func TestQuantRuleString(t *testing.T) {
	r := QuantRule{
		Antecedents: []AttrInterval{{Attr: 0, Interval: Interval{3, 5}}},
		Consequent:  AttrInterval{Attr: 1, Interval: Interval{1.5, 2}},
		Support:     0.4, Confidence: 0.9,
	}
	s := r.String()
	for _, want := range []string{"attr0:[3-5]", "attr1:[1.5-2]", "conf 0.90"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{2, 4}
	if !iv.Contains(2) || !iv.Contains(3.999) || iv.Contains(4) || iv.Contains(1) {
		t.Error("Contains wrong")
	}
	if iv.Mid() != 3 {
		t.Errorf("Mid = %v, want 3", iv.Mid())
	}
}
