package assoc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ratiorules/internal/matrix"
)

// Interval is a half-open value range [Lo, Hi) over one attribute. The last
// interval of an attribute is closed on both ends so the maximum belongs
// somewhere.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v falls in the interval (treating Hi as
// inclusive when the interval is the attribute's last, handled by the
// caller via a small epsilon on construction).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v < iv.Hi }

// Mid returns the interval midpoint, used as the point prediction.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// AttrInterval pairs an attribute index with one of its intervals.
type AttrInterval struct {
	Attr     int
	Interval Interval
}

// QuantRule is a quantitative association rule such as
// bread:[3−5] ∧ milk:[1−2] ⇒ butter:[1.5−2].
type QuantRule struct {
	Antecedents []AttrInterval
	Consequent  AttrInterval
	Support     float64
	Confidence  float64
}

// String renders the rule in the paper's notation.
func (r QuantRule) String() string {
	var b strings.Builder
	for i, a := range r.Antecedents {
		if i > 0 {
			b.WriteString(" and ")
		}
		fmt.Fprintf(&b, "attr%d:[%.3g-%.3g]", a.Attr, a.Interval.Lo, a.Interval.Hi)
	}
	fmt.Fprintf(&b, " => attr%d:[%.3g-%.3g] (sup %.2f, conf %.2f)",
		r.Consequent.Attr, r.Consequent.Interval.Lo, r.Consequent.Interval.Hi,
		r.Support, r.Confidence)
	return b.String()
}

// QuantConfig parameterizes quantitative rule mining.
type QuantConfig struct {
	// Bins is the number of equi-depth intervals per attribute.
	Bins int
	// MinSupport and MinConfidence follow the support-confidence framework.
	MinSupport    float64
	MinConfidence float64
	// MaxAntecedents caps rule size (0 = 2, the common practical choice).
	MaxAntecedents int
}

// QuantModel is a mined set of quantitative association rules together
// with the discretization that produced them. It can attempt point
// predictions of a hidden attribute; unlike Ratio Rules, prediction fails
// when no rule's antecedents match the record (the Fig. 12 limitation).
type QuantModel struct {
	// Cuts[j] holds the bin boundaries of attribute j (len Bins+1).
	Cuts  [][]float64
	Rules []QuantRule
	attrs int
}

// MineQuantitative discretizes every attribute of x into equi-depth bins,
// mines frequent (attribute, interval) itemsets with Apriori, and derives
// rules with a single consequent.
func MineQuantitative(x *matrix.Dense, cfg QuantConfig) (*QuantModel, error) {
	n, m := x.Dims()
	if cfg.Bins < 2 {
		return nil, fmt.Errorf("assoc: %d bins, want at least 2", cfg.Bins)
	}
	if n == 0 {
		return nil, fmt.Errorf("assoc: empty training matrix")
	}
	maxAnte := cfg.MaxAntecedents
	if maxAnte <= 0 {
		maxAnte = 2
	}

	cuts := make([][]float64, m)
	for j := 0; j < m; j++ {
		cuts[j] = equiDepthCuts(x.Col(j), cfg.Bins)
	}
	model := &QuantModel{Cuts: cuts, attrs: m}

	// Encode each row as a transaction of (attr, bin) items.
	transactions := make([]Itemset, n)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		t := make(Itemset, m)
		for j, v := range row {
			t[j] = model.itemID(j, model.binOf(j, v))
		}
		sort.Ints(t)
		transactions[i] = t
	}
	frequent, err := Apriori(transactions, AprioriConfig{
		MinSupport: cfg.MinSupport,
		MaxLen:     maxAnte + 1,
	})
	if err != nil {
		return nil, err
	}
	boolRules, err := Rules(frequent, n, cfg.MinConfidence)
	if err != nil {
		return nil, err
	}
	for _, br := range boolRules {
		qr := QuantRule{Support: br.Support, Confidence: br.Confidence}
		ok := true
		seen := map[int]bool{}
		for _, item := range br.Antecedent {
			attr, bin := model.itemAttrBin(item)
			if seen[attr] {
				ok = false // one interval per attribute
				break
			}
			seen[attr] = true
			qr.Antecedents = append(qr.Antecedents, AttrInterval{Attr: attr, Interval: model.interval(attr, bin)})
		}
		if !ok {
			continue
		}
		attr, bin := model.itemAttrBin(br.Consequent)
		if seen[attr] {
			continue
		}
		qr.Consequent = AttrInterval{Attr: attr, Interval: model.interval(attr, bin)}
		sort.Slice(qr.Antecedents, func(a, b int) bool { return qr.Antecedents[a].Attr < qr.Antecedents[b].Attr })
		model.Rules = append(model.Rules, qr)
	}
	return model, nil
}

// itemID packs (attr, bin) into a single item identifier.
func (m *QuantModel) itemID(attr, bin int) int { return attr*(len(m.Cuts[0])) + bin }

// itemAttrBin unpacks an item identifier.
func (m *QuantModel) itemAttrBin(item int) (attr, bin int) {
	w := len(m.Cuts[0])
	return item / w, item % w
}

// binOf locates the bin of value v on attribute j (clamped to the ends):
// the first bin whose upper bound strictly exceeds v, matching the
// half-open [Lo, Hi) interval convention.
func (m *QuantModel) binOf(j int, v float64) int {
	cuts := m.Cuts[j]
	bins := len(cuts) - 1
	return sort.Search(bins-1, func(b int) bool { return v < cuts[b+1] })
}

// interval returns the bin's value range.
func (m *QuantModel) interval(j, bin int) Interval {
	cuts := m.Cuts[j]
	return Interval{Lo: cuts[bin], Hi: cuts[bin+1]}
}

// Predict attempts to estimate attribute target of the record from the
// mined rules: among rules whose consequent is the target attribute and
// whose antecedent intervals all contain the record's values, it picks the
// highest-confidence one and returns the consequent interval's midpoint.
// The boolean result reports whether any rule fired — the paper's point is
// that no rule fires outside the training data's bounding rectangles.
func (m *QuantModel) Predict(row []float64, target int) (float64, bool, error) {
	if len(row) != m.attrs {
		return 0, false, fmt.Errorf("assoc: record width %d, want %d", len(row), m.attrs)
	}
	if target < 0 || target >= m.attrs {
		return 0, false, fmt.Errorf("assoc: target %d out of range [0,%d)", target, m.attrs)
	}
	best := -1.0
	var val float64
	for _, r := range m.Rules {
		if r.Consequent.Attr != target {
			continue
		}
		match := true
		for _, a := range r.Antecedents {
			if a.Attr == target || !a.Interval.Contains(row[a.Attr]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if r.Confidence > best {
			best = r.Confidence
			val = r.Consequent.Interval.Mid()
		}
	}
	if best < 0 {
		return 0, false, nil
	}
	return val, true, nil
}

// equiDepthCuts computes bin boundaries holding roughly equal numbers of
// values, widening the outermost bounds slightly so every training value
// falls inside some bin.
func equiDepthCuts(values []float64, bins int) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	cuts := make([]float64, bins+1)
	for b := 0; b <= bins; b++ {
		idx := b * (n - 1) / bins
		cuts[b] = sorted[idx]
	}
	// Ensure strictly increasing cuts even with ties, and give the last
	// interval room to include the maximum.
	span := sorted[n-1] - sorted[0]
	eps := 1e-9 * (1 + math.Abs(span))
	for b := 1; b <= bins; b++ {
		if cuts[b] <= cuts[b-1] {
			cuts[b] = cuts[b-1] + eps
		}
	}
	cuts[bins] += eps
	return cuts
}
