// Package assoc implements the association-rule baselines that the paper
// positions Ratio Rules against (Sec. 6.3): Boolean association rules in
// the style of Agrawal et al. (SIGMOD 1993) mined with Apriori, and
// quantitative association rules in the style of Srikant & Agrawal
// (SIGMOD 1996), which partition each numeric attribute into intervals and
// mine Boolean rules over the (attribute, interval) items.
//
// The package exists to reproduce the qualitative comparison of Fig. 12:
// quantitative rules cover the clustered region of the data with bounding
// rectangles but cannot fire outside them, while Ratio Rules extrapolate.
package assoc

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Itemset is a sorted set of item identifiers.
type Itemset []int

// key encodes the itemset for map lookups.
func (s Itemset) key() string {
	var b strings.Builder
	for i, v := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// contains reports whether the sorted itemset contains item v.
func (s Itemset) contains(v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// isSubsetOf reports whether every item of s appears in the sorted set t.
func (s Itemset) isSubsetOf(t Itemset) bool {
	i := 0
	for _, v := range s {
		for i < len(t) && t[i] < v {
			i++
		}
		if i >= len(t) || t[i] != v {
			return false
		}
	}
	return true
}

// FrequentItemset couples an itemset with its support count.
type FrequentItemset struct {
	Items Itemset
	Count int
}

// AprioriConfig bounds the classic level-wise search.
type AprioriConfig struct {
	// MinSupport is the minimum fraction of transactions an itemset must
	// appear in, in (0, 1].
	MinSupport float64
	// MaxLen caps the itemset size explored (0 = unlimited).
	MaxLen int
}

// Apriori mines all frequent itemsets from transactions (each a sorted,
// duplicate-free list of item IDs) using the level-wise candidate
// generation of Agrawal & Srikant (VLDB 1994).
func Apriori(transactions []Itemset, cfg AprioriConfig) ([]FrequentItemset, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("assoc: min support %v outside (0, 1]", cfg.MinSupport)
	}
	n := len(transactions)
	if n == 0 {
		return nil, nil
	}
	minCount := int(math.Ceil(cfg.MinSupport * float64(n)))
	if minCount < 1 {
		minCount = 1
	}

	// L1: frequent single items.
	counts := map[int]int{}
	for _, t := range transactions {
		for _, item := range t {
			counts[item]++
		}
	}
	var level []FrequentItemset
	for item, c := range counts {
		if c >= minCount {
			level = append(level, FrequentItemset{Items: Itemset{item}, Count: c})
		}
	}
	sortFrequent(level)

	var all []FrequentItemset
	all = append(all, level...)
	for size := 2; len(level) > 0 && (cfg.MaxLen == 0 || size <= cfg.MaxLen); size++ {
		candidates := generateCandidates(level)
		if len(candidates) == 0 {
			break
		}
		// Count candidate occurrences with one scan.
		cand := make(map[string]*FrequentItemset, len(candidates))
		for i := range candidates {
			cand[candidates[i].Items.key()] = &candidates[i]
		}
		for _, t := range transactions {
			if len(t) < size {
				continue
			}
			for _, c := range cand {
				if c.Items.isSubsetOf(t) {
					c.Count++
				}
			}
		}
		level = level[:0]
		for _, c := range cand {
			if c.Count >= minCount {
				level = append(level, *c)
			}
		}
		sortFrequent(level)
		all = append(all, level...)
	}
	return all, nil
}

// generateCandidates joins frequent (k−1)-itemsets sharing a (k−2)-prefix
// and prunes candidates with an infrequent subset.
func generateCandidates(level []FrequentItemset) []FrequentItemset {
	freq := make(map[string]bool, len(level))
	for _, f := range level {
		freq[f.Items.key()] = true
	}
	var out []FrequentItemset
	seen := map[string]bool{}
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i].Items, level[j].Items
			if !samePrefix(a, b) {
				continue
			}
			joined := make(Itemset, len(a)+1)
			copy(joined, a)
			last := b[len(b)-1]
			if a[len(a)-1] > last {
				joined[len(a)-1], joined[len(a)] = last, a[len(a)-1]
			} else {
				joined[len(a)] = last
			}
			k := joined.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if !allSubsetsFrequent(joined, freq) {
				continue
			}
			out = append(out, FrequentItemset{Items: joined})
		}
	}
	return out
}

// samePrefix reports whether a and b agree everywhere except the last item.
func samePrefix(a, b Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

// allSubsetsFrequent applies the Apriori pruning property.
func allSubsetsFrequent(c Itemset, freq map[string]bool) bool {
	sub := make(Itemset, len(c)-1)
	for drop := range c {
		copy(sub, c[:drop])
		copy(sub[drop:], c[drop+1:])
		if !freq[sub.key()] {
			return false
		}
	}
	return true
}

// sortFrequent orders itemsets lexicographically for determinism.
func sortFrequent(fs []FrequentItemset) {
	sort.Slice(fs, func(a, b int) bool {
		x, y := fs[a].Items, fs[b].Items
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
}

// BoolRule is a Boolean association rule A ⇒ c with its support and
// confidence, e.g. {bread, milk} ⇒ butter (90%).
type BoolRule struct {
	Antecedent Itemset
	Consequent int
	Support    float64
	Confidence float64
}

// Rules derives single-consequent rules from the frequent itemsets of
// Apriori, keeping those at or above minConfidence.
func Rules(frequent []FrequentItemset, numTransactions int, minConfidence float64) ([]BoolRule, error) {
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, fmt.Errorf("assoc: min confidence %v outside (0, 1]", minConfidence)
	}
	if numTransactions <= 0 {
		return nil, nil
	}
	counts := make(map[string]int, len(frequent))
	for _, f := range frequent {
		counts[f.Items.key()] = f.Count
	}
	var out []BoolRule
	sub := make(Itemset, 0, 8)
	for _, f := range frequent {
		if len(f.Items) < 2 {
			continue
		}
		for drop, consequent := range f.Items {
			sub = sub[:0]
			sub = append(sub, f.Items[:drop]...)
			sub = append(sub, f.Items[drop+1:]...)
			antCount, ok := counts[sub.key()]
			if !ok || antCount == 0 {
				continue
			}
			conf := float64(f.Count) / float64(antCount)
			if conf >= minConfidence {
				out = append(out, BoolRule{
					Antecedent: append(Itemset(nil), sub...),
					Consequent: consequent,
					Support:    float64(f.Count) / float64(numTransactions),
					Confidence: conf,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Confidence != out[b].Confidence {
			return out[a].Confidence > out[b].Confidence
		}
		return out[a].Support > out[b].Support
	})
	return out, nil
}

// Binarize converts numeric rows into transactions by treating every
// non-zero cell as a purchased item — the information-discarding step the
// paper criticizes Boolean association rules for (Sec. 6.3).
func Binarize(rows [][]float64) []Itemset {
	out := make([]Itemset, len(rows))
	for i, row := range rows {
		var t Itemset
		for j, v := range row {
			if v != 0 {
				t = append(t, j)
			}
		}
		out[i] = t
	}
	return out
}
