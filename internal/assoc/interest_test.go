package assoc

import (
	"math"
	"testing"
)

func TestTally(t *testing.T) {
	tx := []Itemset{
		{0, 1}, // both
		{0},    // ant only
		{1},    // con only
		{2},    // neither
		{0, 1}, // both
	}
	c := Tally(tx, Itemset{0}, 1)
	if c.Both != 2 || c.AntOnly != 1 || c.ConOnly != 1 || c.Neither != 1 {
		t.Errorf("Tally = %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestLiftIndependence(t *testing.T) {
	// Perfectly independent: P(ant)=1/2, P(con)=1/2, P(both)=1/4.
	c := Contingency{Both: 25, AntOnly: 25, ConOnly: 25, Neither: 25}
	lift, err := c.Lift()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lift-1) > 1e-12 {
		t.Errorf("independent lift = %v, want 1", lift)
	}
	chi, err := c.ChiSquare()
	if err != nil {
		t.Fatal(err)
	}
	if chi > 1e-12 {
		t.Errorf("independent chi-square = %v, want 0", chi)
	}
}

func TestLiftPositiveAssociation(t *testing.T) {
	// Antecedent and consequent always co-occur.
	c := Contingency{Both: 50, Neither: 50}
	lift, err := c.Lift()
	if err != nil {
		t.Fatal(err)
	}
	if lift <= 1.9 {
		t.Errorf("lift = %v, want ≈ 2 (perfect co-occurrence at 50%% support)", lift)
	}
	chi, err := c.ChiSquare()
	if err != nil {
		t.Fatal(err)
	}
	if chi < 50 {
		t.Errorf("chi-square = %v, want very large", chi)
	}
}

func TestMeasuresUndefined(t *testing.T) {
	if _, err := (Contingency{}).Lift(); err == nil {
		t.Error("empty lift must fail")
	}
	if _, err := (Contingency{}).ChiSquare(); err == nil {
		t.Error("empty chi-square must fail")
	}
	// Consequent never occurs.
	c := Contingency{AntOnly: 10, Neither: 10}
	if _, err := c.Lift(); err == nil {
		t.Error("zero-marginal lift must fail")
	}
	if _, err := c.ChiSquare(); err == nil {
		t.Error("zero-marginal chi-square must fail")
	}
}

func TestScoreRules(t *testing.T) {
	baskets := shoppingBaskets()
	fs, err := Apriori(baskets, AprioriConfig{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(fs, len(baskets), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	scored := ScoreRules(baskets, rules)
	if len(scored) == 0 {
		t.Fatal("no scored rules")
	}
	for _, s := range scored {
		if s.Lift <= 0 {
			t.Errorf("rule %v lift = %v", s.BoolRule, s.Lift)
		}
		if s.ChiSquare < 0 {
			t.Errorf("rule %v chi-square = %v", s.BoolRule, s.ChiSquare)
		}
	}
	// {bread} => butter: bread in 5/6, butter in 4/6, both 4/6.
	// lift = (4/6)/((5/6)(4/6)) = 6/5 = 1.2.
	for _, s := range scored {
		if len(s.Antecedent) == 1 && s.Antecedent[0] == 0 && s.Consequent == 2 {
			if math.Abs(s.Lift-1.2) > 1e-12 {
				t.Errorf("{bread} => butter lift = %v, want 1.2", s.Lift)
			}
		}
	}
}

func TestScoreRulesSkipsDegenerate(t *testing.T) {
	// All transactions contain everything: marginals saturate and the
	// chi-square denominator vanishes — such rules must be skipped, not
	// returned as NaN.
	tx := []Itemset{{0, 1}, {0, 1}}
	rules := []BoolRule{{Antecedent: Itemset{0}, Consequent: 1}}
	if got := ScoreRules(tx, rules); len(got) != 0 {
		t.Errorf("degenerate rules scored: %+v", got)
	}
}
