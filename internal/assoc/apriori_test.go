package assoc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// The classic textbook transaction set.
func shoppingBaskets() []Itemset {
	// Items: 0=bread, 1=milk, 2=butter, 3=beer.
	return []Itemset{
		{0, 1, 2},
		{0, 1},
		{0, 1, 2},
		{1, 3},
		{0, 1, 2, 3},
		{0, 2},
	}
}

func TestAprioriFindsFrequentItemsets(t *testing.T) {
	fs, err := Apriori(shoppingBaskets(), AprioriConfig{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, f := range fs {
		got[f.Items.key()] = f.Count
	}
	want := map[string]int{
		"0":     5, // bread
		"1":     5, // milk
		"2":     4, // butter
		"0,1":   4, // bread+milk
		"0,2":   4, // bread+butter
		"1,2":   3, // milk+butter
		"0,1,2": 3, // all three
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("frequent itemsets = %v, want %v", got, want)
	}
}

func TestAprioriMinSupportFilters(t *testing.T) {
	fs, err := Apriori(shoppingBaskets(), AprioriConfig{MinSupport: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("99%% support: got %d itemsets, want 0", len(fs))
	}
}

func TestAprioriMaxLen(t *testing.T) {
	fs, err := Apriori(shoppingBaskets(), AprioriConfig{MinSupport: 0.5, MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if len(f.Items) > 1 {
			t.Errorf("MaxLen=1 produced itemset %v", f.Items)
		}
	}
}

func TestAprioriValidation(t *testing.T) {
	for _, sup := range []float64{0, -1, 1.5} {
		if _, err := Apriori(nil, AprioriConfig{MinSupport: sup}); err == nil {
			t.Errorf("MinSupport=%v must fail", sup)
		}
	}
	fs, err := Apriori(nil, AprioriConfig{MinSupport: 0.5})
	if err != nil || fs != nil {
		t.Errorf("empty transactions: got %v, %v", fs, err)
	}
}

func TestRulesConfidence(t *testing.T) {
	baskets := shoppingBaskets()
	fs, err := Apriori(baskets, AprioriConfig{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(fs, len(baskets), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Expect the paper's flagship form: {bread, milk} ⇒ butter at 3/4.
	found := false
	for _, r := range rules {
		if r.Consequent == 2 && len(r.Antecedent) == 2 &&
			r.Antecedent[0] == 0 && r.Antecedent[1] == 1 {
			found = true
			if r.Confidence != 0.75 {
				t.Errorf("confidence = %v, want 0.75", r.Confidence)
			}
			if r.Support != 0.5 {
				t.Errorf("support = %v, want 0.5", r.Support)
			}
		}
		if r.Confidence < 0.7 {
			t.Errorf("rule below min confidence: %+v", r)
		}
	}
	if !found {
		t.Error("rule {bread, milk} => butter not found")
	}
	// Sorted by confidence descending.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Error("rules not sorted by confidence")
		}
	}
}

func TestRulesValidation(t *testing.T) {
	if _, err := Rules(nil, 10, 0); err == nil {
		t.Error("zero confidence must fail")
	}
	if _, err := Rules(nil, 10, 1.1); err == nil {
		t.Error("confidence above 1 must fail")
	}
	rules, err := Rules(nil, 0, 0.5)
	if err != nil || rules != nil {
		t.Errorf("no transactions: got %v, %v", rules, err)
	}
}

func TestBinarize(t *testing.T) {
	got := Binarize([][]float64{{1.5, 0, 2}, {0, 0, 0}, {0.1, 0.2, 0.3}})
	want := []Itemset{{0, 2}, nil, {0, 1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Binarize = %v, want %v", got, want)
	}
}

func TestItemsetHelpers(t *testing.T) {
	s := Itemset{1, 3, 5}
	if !s.contains(3) || s.contains(2) {
		t.Error("contains wrong")
	}
	if !(Itemset{1, 5}).isSubsetOf(s) {
		t.Error("subset wrong")
	}
	if (Itemset{1, 2}).isSubsetOf(s) {
		t.Error("non-subset reported as subset")
	}
	if (Itemset{}).key() != "" || (Itemset{1, 2}).key() != "1,2" {
		t.Error("key encoding wrong")
	}
}

// Property-ish check against a brute-force counter on small random data.
func TestAprioriAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		const items = 6
		n := 20 + rng.Intn(30)
		tx := make([]Itemset, n)
		for i := range tx {
			var t Itemset
			for j := 0; j < items; j++ {
				if rng.Float64() < 0.4 {
					t = append(t, j)
				}
			}
			tx[i] = t
		}
		minSup := 0.25
		fs, err := Apriori(tx, AprioriConfig{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, f := range fs {
			got[f.Items.key()] = f.Count
		}
		// Brute force: enumerate all non-empty subsets of {0..5}.
		minCount := int(math.Ceil(minSup * float64(n)))
		if minCount < 1 {
			minCount = 1
		}
		for mask := 1; mask < 1<<items; mask++ {
			var set Itemset
			for j := 0; j < items; j++ {
				if mask&(1<<j) != 0 {
					set = append(set, j)
				}
			}
			count := 0
			for _, tr := range tx {
				if set.isSubsetOf(tr) {
					count++
				}
			}
			k := set.key()
			if count >= minCount {
				if got[k] != count {
					t.Fatalf("trial %d: itemset %v count %d, brute force %d", trial, set, got[k], count)
				}
			} else if _, ok := got[k]; ok {
				t.Fatalf("trial %d: infrequent itemset %v reported", trial, set)
			}
		}
	}
}
