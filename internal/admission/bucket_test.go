package admission

import (
	"testing"
	"time"
)

func TestBucketUnlimited(t *testing.T) {
	var b *bucket = newBucket(0, 0)
	if b != nil {
		t.Fatalf("rate 0 should yield a nil (unlimited) bucket")
	}
	if ok, retry := b.take(1e9); !ok || retry != 0 {
		t.Fatalf("nil bucket take = (%v, %v), want (true, 0)", ok, retry)
	}
	if got := b.takeUpTo(42); got != 42 {
		t.Fatalf("nil bucket takeUpTo = %v, want 42", got)
	}
}

func TestBucketStartsFullAndDrains(t *testing.T) {
	b := newBucket(10, 5) // burst clamps up to rate
	if b.burst != 10 {
		t.Fatalf("burst = %v, want clamped to rate 10", b.burst)
	}
	for i := 0; i < 10; i++ {
		if ok, _ := b.take(1); !ok {
			t.Fatalf("take %d failed with a full bucket", i)
		}
	}
	ok, retry := b.take(1)
	if ok {
		t.Fatal("take succeeded on an empty bucket")
	}
	if retry <= 0 || retry > 150*time.Millisecond {
		t.Fatalf("retryAfter = %v, want ~100ms for 1 token at 10/s", retry)
	}
}

func TestBucketRefills(t *testing.T) {
	b := newBucket(1000, 1000)
	b.takeUpTo(1000) // drain
	time.Sleep(20 * time.Millisecond)
	if got := b.takeUpTo(1000); got < 5 {
		t.Fatalf("after 20ms at 1000/s, takeUpTo got %v tokens, want >= 5", got)
	}
}

func TestBucketOversizedDraw(t *testing.T) {
	b := newBucket(10, 10)
	ok, retry := b.take(1e6)
	if ok {
		t.Fatal("oversized take succeeded")
	}
	// retryAfter is clamped to a full-burst refill, not 1e5 seconds.
	if retry > 2*time.Second {
		t.Fatalf("oversized take retryAfter = %v, want <= burst refill (1s)", retry)
	}
}

func TestBucketSetRateNeverMints(t *testing.T) {
	b := newBucket(10, 100)
	b.takeUpTo(100) // drain
	b.setRate(10, 10)
	if got := b.available(); got > 1 {
		t.Fatalf("available after retune = %v, want ~0 (no minting)", got)
	}
	b2 := newBucket(10, 10)
	b2.setRate(10, 5) // shrink burst below balance
	if got := b2.available(); got > 10 {
		t.Fatalf("available after shrink = %v, want clamped to new burst", got)
	}
}

func TestBucketRefund(t *testing.T) {
	b := newBucket(10, 10)
	b.takeUpTo(10)
	b.refund(4)
	if got := b.available(); got < 4 || got > 5 {
		t.Fatalf("available after refund = %v, want ~4", got)
	}
	b.refund(1e6)
	if got := b.available(); got > 10 {
		t.Fatalf("refund exceeded burst: available = %v", got)
	}
}
