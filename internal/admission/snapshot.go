package admission

// Live state export: Snapshot feeds GET /debug/admission with bucket
// balances and semaphore occupancy per tenant; Health feeds the tenant
// block of /readyz.

import "time"

// TenantSnapshot is one tenant's live admission state.
type TenantSnapshot struct {
	ID        string `json:"id"`
	Scope     string `json:"scope,omitempty"`
	Priority  int    `json:"priority"`
	Disabled  bool   `json:"disabled,omitempty"`
	Anonymous bool   `json:"anonymous,omitempty"`
	Limits    Limits `json:"limits"`
	InFlight  int    `json:"in_flight"`
	Queued    int    `json:"queued"`
	// Token balances; absent (null) buckets are unlimited.
	RequestTokens  *float64 `json:"request_tokens,omitempty"`
	RowTokens      *float64 `json:"row_tokens,omitempty"`
	BatchRowTokens *float64 `json:"batch_row_tokens,omitempty"`
}

// QueueSnapshot is one model ingest queue's occupancy.
type QueueSnapshot struct {
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
}

// Snapshot is the GET /debug/admission document.
type Snapshot struct {
	TenantsFile    string                   `json:"tenants_file,omitempty"`
	Reloads        int                      `json:"reloads"`
	ReloadError    string                   `json:"reload_error,omitempty"`
	GlobalInFlight int                      `json:"global_in_flight"`
	GlobalCeiling  int                      `json:"global_ceiling,omitempty"`
	MaxWaitMillis  int64                    `json:"max_wait_ms"`
	IngestQueueCap int                      `json:"ingest_queue_cap"`
	Tenants        []TenantSnapshot         `json:"tenants"`
	IngestQueues   map[string]QueueSnapshot `json:"ingest_queues,omitempty"`
}

// Snapshot captures the controller's live state.
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Snapshot{
		TenantsFile:    c.cfg.TenantsFile,
		Reloads:        c.reloads,
		GlobalCeiling:  c.cfg.GlobalInFlight,
		MaxWaitMillis:  c.cfg.MaxWait.Milliseconds(),
		IngestQueueCap: c.cfg.IngestQueue,
		Tenants:        make([]TenantSnapshot, 0, len(c.byID)),
	}
	if c.reloadErr != nil {
		s.ReloadError = c.reloadErr.Error()
	}
	if c.global != nil {
		used, _, _ := c.global.state()
		s.GlobalInFlight = used
	}
	for _, t := range sortedTenants(c.byID) {
		used, _, queued := t.state.inflight.state()
		ts := TenantSnapshot{
			ID:        t.ID,
			Scope:     t.Scope,
			Priority:  t.Priority,
			Disabled:  t.disabled,
			Anonymous: t == c.anon,
			Limits:    t.limits,
			InFlight:  used,
			Queued:    queued,
		}
		ts.RequestTokens = balance(t.state.requests)
		ts.RowTokens = balance(t.state.rows)
		ts.BatchRowTokens = balance(t.state.batchRows)
		s.Tenants = append(s.Tenants, ts)
	}
	if len(c.ingestQueues) > 0 {
		s.IngestQueues = make(map[string]QueueSnapshot, len(c.ingestQueues))
		for model, q := range c.ingestQueues {
			used, _, queued := q.state()
			s.IngestQueues[model] = QueueSnapshot{InFlight: used, Queued: queued}
		}
	}
	return s
}

func balance(b *bucket) *float64 {
	if b == nil {
		return nil
	}
	v := b.available()
	return &v
}

func sortedTenants(byID map[string]*Tenant) []*Tenant {
	out := make([]*Tenant, 0, len(byID))
	for _, t := range byID {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tenant counts are small
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Health is the /readyz tenant block.
type Health struct {
	Enabled     bool      `json:"enabled"`
	Tenants     int       `json:"tenants"`
	Anonymous   string    `json:"anonymous,omitempty"`
	Reloads     int       `json:"reloads"`
	ReloadError string    `json:"reload_error,omitempty"`
	LoadedAt    time.Time `json:"loaded_at,omitempty"`
}

// Health summarizes registry state for readiness. A stale-but-serving
// registry (reload failing, last-good table active) is reported
// degraded via ReloadError but does not fail readiness — rejecting all
// traffic because a config rotation was fumbled would be worse.
func (c *Controller) Health() Health {
	if c == nil {
		return Health{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := Health{Enabled: true, Tenants: len(c.byID), Reloads: c.reloads, LoadedAt: c.fileMod}
	if c.anon != nil {
		h.Anonymous = c.anon.ID
	}
	if c.reloadErr != nil {
		h.ReloadError = c.reloadErr.Error()
	}
	return h
}
