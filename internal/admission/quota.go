package admission

// quota is a resizable in-flight semaphore with FIFO handoff and a
// bounded waiting room. It backs both the per-tenant concurrency quota
// and the per-model ingest admission queue: cap slots run concurrently,
// at most maxWait waiters queue behind them (each for a bounded time),
// and everything beyond that is rejected immediately — the caller sheds
// with 429 instead of joining an unbounded convoy.

import (
	"context"
	"sync"
	"time"
)

type quota struct {
	mu      sync.Mutex
	cap     int // concurrent holders allowed; <= 0 means unlimited
	used    int
	maxWait int // waiters allowed to queue; beyond it acquire fails fast
	// waiters is the FIFO of parked acquirers. A slot is handed to the
	// head waiter on release (closing its channel) so arrival order is
	// service order — no barging, which is what keeps one aggressive
	// client from starving a patient one.
	waiters []chan struct{}
}

// newQuota builds a quota. capSlots <= 0 disables the limit entirely
// (acquire always succeeds and release is a no-op) but still counts
// in-flight for observability.
func newQuota(capSlots, maxWaiters int) *quota {
	return &quota{cap: capSlots, maxWait: maxWaiters}
}

// tryAcquire takes a slot without waiting.
func (q *quota) tryAcquire() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cap <= 0 || (q.used < q.cap && len(q.waiters) == 0) {
		q.used++
		return true
	}
	return false
}

// acquire takes a slot, waiting up to wait while queued (FIFO). It
// reports false when the waiting room is full, the wait expires, or ctx
// is done first. A false return means the caller sheds.
func (q *quota) acquire(ctx context.Context, wait time.Duration) bool {
	q.mu.Lock()
	if q.cap <= 0 || (q.used < q.cap && len(q.waiters) == 0) {
		q.used++
		q.mu.Unlock()
		return true
	}
	if wait <= 0 || len(q.waiters) >= q.maxWait {
		q.mu.Unlock()
		return false
	}
	ready := make(chan struct{})
	q.waiters = append(q.waiters, ready)
	q.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ready:
		// The releaser incremented used on our behalf before closing.
		return true
	case <-timer.C:
	case <-ctx.Done():
	}
	// Timed out or canceled: withdraw from the queue. If the handoff
	// raced us (ready closed after the timer fired but before we got
	// here), the slot is ours and we keep it.
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case <-ready:
		return true
	default:
	}
	for i, w := range q.waiters {
		if w == ready {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			break
		}
	}
	return false
}

// release returns a slot, handing it to the head waiter when one is
// queued.
func (q *quota) release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.used > 0 {
		q.used--
	}
	for len(q.waiters) > 0 && q.used < q.cap {
		head := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.used++
		close(head)
	}
}

// setCap retunes the concurrency limit in place (tenant-file reload).
// Growing the cap drains queued waiters immediately; shrinking lets
// in-flight work finish and bites on the next acquire.
func (q *quota) setCap(capSlots, maxWaiters int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.cap, q.maxWait = capSlots, maxWaiters
	for len(q.waiters) > 0 && (q.cap <= 0 || q.used < q.cap) {
		head := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.used++
		close(head)
	}
}

// state reports (in-flight, cap, queued waiters) for /debug/admission.
func (q *quota) state() (used, capSlots, queued int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.used, q.cap, len(q.waiters)
}
