// Package admission is the traffic-protection and multi-tenancy layer
// in front of the Ratio Rules serving surface. It answers one question
// per request — may this caller do this work right now? — through four
// stacked mechanisms:
//
//  1. Authentication: a static bearer-token tenant registry
//     (-tenants-file), hot-reloadable on SIGHUP or mtime change, maps
//     Authorization: Bearer tokens to tenants with per-tenant limit
//     overrides. Unauthenticated requests run as the designated
//     anonymous tenant, or are rejected 401 when none is configured.
//  2. Rate limiting: per-tenant token buckets — request-based for the
//     unary API, separate row-based buckets for streaming ingest and
//     batch inference — answering 429 rate_limited with Retry-After.
//  3. Concurrency quotas: per-tenant in-flight semaphores with a
//     bounded FIFO wait, answering 429 over_quota beyond them.
//  4. Load shedding: a global in-flight ceiling that sheds
//     lowest-priority tenants first (503 overloaded), plus a bounded
//     per-model admission queue in front of the online ingest fold —
//     replacing the unbounded mutex convoy — with shed counters.
//
// Everything is stdlib-only and observable: rr_admission_* metrics
// (tenant-labeled), admission.check spans, and a live state snapshot
// for GET /debug/admission. A nil *Controller disables every check at
// zero cost, which is the no-auth back-compat path.
package admission

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"ratiorules/internal/obs"
)

// Stable sentinel errors the HTTP layer maps onto envelope codes.
var (
	// ErrUnauthorized: no usable bearer token and anonymous access is
	// off, or the token matches no tenant (401 unauthorized).
	ErrUnauthorized = errors.New("unauthorized")
	// ErrForbidden: the token is valid but the tenant is disabled
	// (403 forbidden).
	ErrForbidden = errors.New("forbidden")
	// ErrRateLimited: a token bucket ran dry (429 rate_limited).
	ErrRateLimited = errors.New("rate limited")
	// ErrOverQuota: the tenant's in-flight quota (or the ingest
	// admission queue) is full past its bounded wait (429 over_quota).
	ErrOverQuota = errors.New("over concurrency quota")
	// ErrOverloaded: the global in-flight ceiling shed this request
	// (503 overloaded).
	ErrOverloaded = errors.New("server overloaded")
)

// LimitError wraps an admission rejection with the Retry-After the
// client should honor. errors.Is matching works against the wrapped
// sentinel.
type LimitError struct {
	Sentinel   error
	RetryAfter time.Duration
	Detail     string
}

func (e *LimitError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s", e.Sentinel, e.Detail)
	}
	return e.Sentinel.Error()
}

func (e *LimitError) Unwrap() error { return e.Sentinel }

// RetryAfterOf extracts a Retry-After hint from an admission error
// (0 when the error carries none).
func RetryAfterOf(err error) time.Duration {
	var le *LimitError
	if errors.As(err, &le) {
		return le.RetryAfter
	}
	return 0
}

// Defaults for the controller knobs (rrserve flags override).
const (
	// DefaultMaxWait bounds how long a request may queue for a quota
	// slot or row tokens before shedding. Short by design: shedding
	// fast is the point — a queued request holds a connection.
	DefaultMaxWait = 100 * time.Millisecond
	// DefaultIngestQueue is the waiting room behind each model's ingest
	// fold (the bounded replacement for the old mutex convoy).
	DefaultIngestQueue = 64
	// DefaultPollInterval is the tenants-file mtime poll cadence.
	DefaultPollInterval = 2 * time.Second
	// AnonymousID labels the built-in identity used when no tenants
	// file is configured (single-tenant mode with flag-set limits).
	AnonymousID = "anon"
)

// globalShedFrac is the fraction of the global in-flight ceiling each
// priority class may fill before it sheds: low-priority traffic sheds
// at 60% so headroom survives for normal (85%) and high (100%) tenants.
// Under no overload the thresholds never bind; under overload the
// lowest class sheds first, by construction.
var globalShedFrac = [3]float64{PriorityLow: 0.6, PriorityNormal: 0.85, PriorityHigh: 1.0}

// Config wires a Controller.
type Config struct {
	// TenantsFile is the JSON tenant registry path; empty runs
	// single-tenant: every request is the anonymous identity with the
	// Defaults limits, models stay in the root namespace.
	TenantsFile string
	// Defaults seeds every tenant's limits; a tenants-file defaults
	// block and per-tenant overrides layer on top. Zero fields mean
	// unlimited.
	Defaults Limits
	// GlobalInFlight is the load-shedding ceiling across all tenants
	// (<= 0 disables global shedding).
	GlobalInFlight int
	// IngestQueue bounds waiters behind each model's ingest fold
	// (default DefaultIngestQueue; < 0 disables the queue).
	IngestQueue int
	// MaxWait bounds quota/queue waits (default DefaultMaxWait).
	MaxWait time.Duration
	// PollInterval is the tenants-file mtime poll cadence for Run
	// (default DefaultPollInterval).
	PollInterval time.Duration

	Logger  *slog.Logger
	Metrics *obs.Registry
}

// Controller is the admission decision point. Safe for concurrent use.
type Controller struct {
	cfg     Config
	logger  *slog.Logger
	metrics *admissionMetrics

	mu     sync.RWMutex
	byTok  map[string]*Tenant // token -> tenant
	byID   map[string]*Tenant // id -> tenant (debug/snapshot)
	anon   *Tenant            // nil when anonymous access is rejected
	states map[string]*tenantState
	// fileMod is the tenants file mtime at last successful load;
	// reloadErr the last reload failure (nil when healthy).
	fileMod   time.Time
	reloadErr error
	reloads   int

	// global is the in-flight ceiling; ingest queues are per model.
	global       *quota
	ingestQueues map[string]*quota
}

// New builds a controller and performs the initial tenants-file load
// (an unreadable or invalid file at boot is a hard error — unlike
// reloads, there is no last-good state to keep serving).
func New(cfg Config) (*Controller, error) {
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default()
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	if cfg.IngestQueue == 0 {
		cfg.IngestQueue = DefaultIngestQueue
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	c := &Controller{
		cfg:          cfg,
		logger:       cfg.Logger,
		metrics:      newAdmissionMetrics(cfg.Metrics),
		states:       make(map[string]*tenantState),
		ingestQueues: make(map[string]*quota),
	}
	if cfg.GlobalInFlight > 0 {
		c.global = newQuota(cfg.GlobalInFlight, 0)
	}
	if cfg.TenantsFile == "" {
		c.installSingleTenant()
		return c, nil
	}
	if err := c.Reload(); err != nil {
		return nil, err
	}
	return c, nil
}

// installSingleTenant builds the no-file configuration: one anonymous
// identity owning the root namespace with the default limits.
func (c *Controller) installSingleTenant() {
	f := &TenantsFile{
		Anonymous: AnonymousID,
		Tenants:   []TenantConfig{{ID: AnonymousID}},
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.installLocked(f)
}

// Reload re-reads the tenants file, swapping the registry atomically on
// success and keeping the last-good table (with the error surfaced in
// readiness and metrics) on failure. Safe to call from a SIGHUP
// handler.
func (c *Controller) Reload() error {
	if c.cfg.TenantsFile == "" {
		return nil
	}
	f, err := parseTenantsFile(c.cfg.TenantsFile)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.reloadErr = err
		c.metrics.reloads.With("error").Inc()
		c.logger.Error("tenants file reload failed; keeping previous registry",
			"file", c.cfg.TenantsFile, "err", err)
		return err
	}
	if fi, statErr := os.Stat(c.cfg.TenantsFile); statErr == nil {
		c.fileMod = fi.ModTime()
	}
	c.installLocked(f)
	c.reloadErr = nil
	c.reloads++
	c.metrics.reloads.With("ok").Inc()
	c.logger.Info("tenant registry loaded",
		"file", c.cfg.TenantsFile, "tenants", len(f.Tenants), "anonymous", f.Anonymous)
	return nil
}

// installLocked rebuilds the tenant table from a validated file,
// reusing each tenant ID's persistent limiter state so a reload cannot
// mint burst tokens or forget in-flight requests. Callers hold mu.
func (c *Controller) installLocked(f *TenantsFile) {
	var base Limits
	if f.Defaults != nil {
		base = *f.Defaults
	}
	base = base.merge(c.cfg.Defaults)

	byTok := make(map[string]*Tenant, len(f.Tenants))
	byID := make(map[string]*Tenant, len(f.Tenants))
	seen := make(map[string]bool, len(f.Tenants))
	for _, tc := range f.Tenants {
		limits := base
		if tc.Limits != nil {
			limits = tc.Limits.merge(base)
		}
		prio := PriorityNormal
		if tc.Priority != nil {
			prio = *tc.Priority
		}
		st := c.states[tc.ID]
		if st == nil {
			st = &tenantState{inflight: newQuota(0, 0)}
			c.states[tc.ID] = st
		}
		st.requests = retune(st.requests, limits.RequestsPerSecond, limits.RequestBurst)
		st.rows = retune(st.rows, limits.RowsPerSecond, limits.RowBurst)
		st.batchRows = retune(st.batchRows, limits.BatchRowsPerSecond, limits.BatchRowBurst)
		// The waiting room behind a tenant quota equals its width: one
		// full extra wave may queue, everything past it sheds fast.
		st.inflight.setCap(limits.MaxInFlight, limits.MaxInFlight)
		seen[tc.ID] = true

		scope := tc.ID + "/"
		if tc.ID == f.Anonymous {
			scope = "" // the anonymous tenant owns the root namespace
		}
		t := &Tenant{
			ID:       tc.ID,
			Scope:    scope,
			Priority: prio,
			disabled: tc.Disabled,
			limits:   limits,
			state:    st,
			maxWait:  limits.maxWait(c.cfg.MaxWait),
		}
		byID[tc.ID] = t
		if tc.Token != "" {
			byTok[tc.Token] = t
		}
		if tc.ID == f.Anonymous {
			c.anon = t
		}
	}
	if f.Anonymous == "" {
		c.anon = nil
	}
	// Drop limiter state for tenants removed by the reload so the map
	// cannot grow without bound across rotations.
	for id := range c.states {
		if !seen[id] {
			delete(c.states, id)
		}
	}
	c.byTok, c.byID = byTok, byID
	c.metrics.tenants.Set(float64(len(byID)))
}

// retune reconciles one bucket against reloaded limits, preserving the
// balance when the bucket survives.
func retune(b *bucket, rate, burst float64) *bucket {
	if rate <= 0 {
		return nil
	}
	if b == nil {
		return newBucket(rate, burst)
	}
	b.setRate(rate, max(burst, rate))
	return b
}

// Run polls the tenants file mtime until ctx ends, reloading on change.
// SIGHUP-driven reloads go through Reload directly; Run is the belt to
// that suspender (and the only mechanism on platforms without SIGHUP).
func (c *Controller) Run(ctx context.Context) {
	if c == nil || c.cfg.TenantsFile == "" {
		return
	}
	ticker := time.NewTicker(c.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			fi, err := os.Stat(c.cfg.TenantsFile)
			if err != nil {
				continue // transient during atomic rotation; next tick retries
			}
			c.mu.RLock()
			changed := !fi.ModTime().Equal(c.fileMod)
			c.mu.RUnlock()
			if changed {
				_ = c.Reload() // Reload logs and counts failures itself
			}
		}
	}
}

// Authenticate resolves a bearer token to a tenant. An empty token is
// the anonymous path. A nil Controller admits everything as a nil
// tenant (root scope, no limits).
func (c *Controller) Authenticate(token string) (*Tenant, error) {
	if c == nil {
		return nil, nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var t *Tenant
	if token == "" {
		if t = c.anon; t == nil {
			c.metrics.requests.With("(none)", "unauthorized").Inc()
			return nil, fmt.Errorf("%w: missing bearer token", ErrUnauthorized)
		}
	} else if t = c.byTok[token]; t == nil {
		c.metrics.requests.With("(none)", "unauthorized").Inc()
		return nil, fmt.Errorf("%w: unknown bearer token", ErrUnauthorized)
	}
	if t.disabled {
		c.metrics.requests.With(t.ID, "forbidden").Inc()
		return nil, fmt.Errorf("%w: tenant %q is disabled", ErrForbidden, t.ID)
	}
	return t, nil
}

// AdmitRequest runs the request-level gauntlet for tenant t: the
// global ceiling (priority-ordered shed), the request token bucket,
// then the in-flight quota with its bounded wait. On success the
// returned release must be called when the request finishes. stream
// requests skip the request bucket — their cost is metered per row by
// RowGate — but still hold quota and ceiling slots.
func (c *Controller) AdmitRequest(ctx context.Context, t *Tenant, stream bool) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	id := tenantLabel(t)
	if c.global != nil && !c.admitGlobal(t) {
		c.metrics.requests.With(id, "shed").Inc()
		return nil, &LimitError{Sentinel: ErrOverloaded, RetryAfter: time.Second,
			Detail: fmt.Sprintf("global in-flight ceiling %d reached", c.cfg.GlobalInFlight)}
	}
	releaseGlobal := func() {
		if c.global != nil {
			c.global.release()
			used, _, _ := c.global.state()
			c.metrics.globalInflight.Set(float64(used))
		}
	}
	if t == nil {
		c.metrics.requests.With(id, "allowed").Inc()
		return releaseGlobal, nil
	}
	if !stream {
		if ok, retry := t.state.requests.take(1); !ok {
			releaseGlobal()
			c.metrics.requests.With(id, "rate_limited").Inc()
			return nil, &LimitError{Sentinel: ErrRateLimited, RetryAfter: retry,
				Detail: fmt.Sprintf("tenant %q request rate %.3g/s exceeded", t.ID, t.limits.RequestsPerSecond)}
		}
	}
	waited := time.Now()
	if !t.state.inflight.acquire(ctx, t.maxWait) {
		releaseGlobal()
		c.metrics.requests.With(id, "over_quota").Inc()
		return nil, &LimitError{Sentinel: ErrOverQuota, RetryAfter: retryAfterQuota,
			Detail: fmt.Sprintf("tenant %q already has %d requests in flight", t.ID, t.limits.MaxInFlight)}
	}
	if d := time.Since(waited); d > 0 {
		c.metrics.wait.With(id, "quota").Observe(d.Seconds())
	}
	c.metrics.requests.With(id, "allowed").Inc()
	c.metrics.inflight.With(id).Inc()
	return func() {
		c.metrics.inflight.With(id).Dec()
		t.state.inflight.release()
		releaseGlobal()
	}, nil
}

// retryAfterQuota is the Retry-After on over_quota rejections: quota
// slots free as in-flight requests finish, so "very soon" is honest.
const retryAfterQuota = time.Second

// admitGlobal takes a global in-flight slot, shedding lowest-priority
// traffic first: each priority class may fill only its fraction of the
// ceiling, so when the server saturates, low-priority tenants bounce
// while high-priority headroom survives.
func (c *Controller) admitGlobal(t *Tenant) bool {
	prio := PriorityNormal
	if t != nil {
		prio = t.Priority
	}
	used, capSlots, _ := c.global.state()
	limit := int(float64(capSlots) * globalShedFrac[prio])
	if limit < 1 {
		limit = 1
	}
	if used >= limit {
		return false
	}
	if !c.global.tryAcquire() {
		return false
	}
	used, _, _ = c.global.state()
	c.metrics.globalInflight.Set(float64(used))
	return true
}

// IngestSlot admits one row into a model's fold path through the
// bounded admission queue: one folder runs, up to IngestQueue waiters
// queue FIFO, everything past that sheds immediately with over_quota.
// The returned release must be called after the fold. A nil controller
// (or a disabled queue) admits at zero cost.
func (c *Controller) IngestSlot(ctx context.Context, t *Tenant, model string) (release func(), err error) {
	if c == nil || c.cfg.IngestQueue < 0 {
		return func() {}, nil
	}
	q := c.ingestQueue(model)
	waited := time.Now()
	if !q.acquire(ctx, c.cfg.MaxWait) {
		c.metrics.queueSheds.With(tenantLabel(t)).Inc()
		return nil, &LimitError{Sentinel: ErrOverQuota, RetryAfter: retryAfterQuota,
			Detail: fmt.Sprintf("ingest admission queue for model %q is full", model)}
	}
	if d := time.Since(waited); d > time.Millisecond {
		c.metrics.wait.With(tenantLabel(t), "ingest_queue").Observe(d.Seconds())
	}
	c.metrics.queueDepth.Set(float64(c.queuedWaiters()))
	return q.release, nil
}

// ingestQueue returns (building on demand) the per-model fold queue.
func (c *Controller) ingestQueue(model string) *quota {
	c.mu.RLock()
	q := c.ingestQueues[model]
	c.mu.RUnlock()
	if q != nil {
		return q
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if q = c.ingestQueues[model]; q == nil {
		q = newQuota(1, c.cfg.IngestQueue)
		c.ingestQueues[model] = q
	}
	return q
}

// DropIngestQueue discards a model's fold queue (model deleted).
func (c *Controller) DropIngestQueue(model string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.ingestQueues, model)
}

// queuedWaiters sums waiters across all model ingest queues.
func (c *Controller) queuedWaiters() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, q := range c.ingestQueues {
		_, _, queued := q.state()
		total += queued
	}
	return total
}

// tenantLabel is the metric label for t (bounded by the tenants file).
func tenantLabel(t *Tenant) string {
	if t == nil {
		return AnonymousID
	}
	return t.ID
}
