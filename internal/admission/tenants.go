package admission

// The tenant registry: a static bearer-token → tenant mapping loaded
// from a JSON file (rrserve -tenants-file), hot-reloadable on SIGHUP or
// when the file's mtime changes. Each tenant carries its own limit
// overrides on top of the controller defaults, a shedding priority, and
// a namespace scope: models a tenant mines or ingests are keyed
// "<tenant>/<name>" in the store, except the designated anonymous
// tenant, which owns the unprefixed root namespace so a pre-tenancy
// deployment keeps serving its existing models unchanged.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"
)

// Limits is one tenant's traffic allowance. Zero-valued fields inherit
// the controller defaults; an explicit -1 on a rate or in-flight field
// means unlimited.
type Limits struct {
	// RequestsPerSecond rate-limits non-streaming requests; RequestBurst
	// is the bucket capacity (defaults to one second of rate).
	RequestsPerSecond float64 `json:"requests_per_second,omitempty"`
	RequestBurst      float64 `json:"request_burst,omitempty"`
	// RowsPerSecond rate-limits streamed ingest rows; RowBurst is the
	// bucket capacity.
	RowsPerSecond float64 `json:"rows_per_second,omitempty"`
	RowBurst      float64 `json:"row_burst,omitempty"`
	// BatchRowsPerSecond rate-limits streamed batch-inference rows —
	// a separate bucket, so a heavy analytics batch cannot starve the
	// same tenant's live ingest (or vice versa).
	BatchRowsPerSecond float64 `json:"batch_rows_per_second,omitempty"`
	BatchRowBurst      float64 `json:"batch_row_burst,omitempty"`
	// MaxInFlight bounds the tenant's concurrent requests; acquirers
	// past it wait up to MaxWait in a bounded FIFO before shedding.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxWaitMillis bounds how long a request may queue for a quota
	// slot or row tokens before shedding (default: controller's).
	MaxWaitMillis int `json:"max_wait_ms,omitempty"`
}

// Priorities recognized in tenant files.
const (
	PriorityLow    = 0
	PriorityNormal = 1
	PriorityHigh   = 2
)

// merge overlays explicit fields of l onto base. -1 means "explicitly
// unlimited" and wins over a base default.
func (l Limits) merge(base Limits) Limits {
	out := base
	overlay := func(dst *float64, v float64) {
		if v != 0 {
			*dst = v
		}
	}
	overlay(&out.RequestsPerSecond, l.RequestsPerSecond)
	overlay(&out.RequestBurst, l.RequestBurst)
	overlay(&out.RowsPerSecond, l.RowsPerSecond)
	overlay(&out.RowBurst, l.RowBurst)
	overlay(&out.BatchRowsPerSecond, l.BatchRowsPerSecond)
	overlay(&out.BatchRowBurst, l.BatchRowBurst)
	if l.MaxInFlight != 0 {
		out.MaxInFlight = l.MaxInFlight
	}
	if l.MaxWaitMillis != 0 {
		out.MaxWaitMillis = l.MaxWaitMillis
	}
	return out
}

// maxWait resolves the per-tenant queue-wait bound against fallback.
func (l Limits) maxWait(fallback time.Duration) time.Duration {
	if l.MaxWaitMillis > 0 {
		return time.Duration(l.MaxWaitMillis) * time.Millisecond
	}
	if l.MaxWaitMillis < 0 {
		return 0
	}
	return fallback
}

// TenantConfig is one entry of the tenants file.
type TenantConfig struct {
	// ID names the tenant: metric label, namespace scope, log field.
	ID string `json:"id"`
	// Token is the bearer token that authenticates as this tenant.
	// Empty is allowed only for the anonymous tenant.
	Token string `json:"token,omitempty"`
	// Disabled rejects the tenant's requests with 403 forbidden while
	// keeping its models and metrics intact — the suspend switch.
	Disabled bool `json:"disabled,omitempty"`
	// Priority orders global load shedding: 0 = shed first, 1 = normal
	// (the default when omitted), 2 = shed last.
	Priority *int `json:"priority,omitempty"`
	// Limits overrides the file defaults field-by-field.
	Limits *Limits `json:"limits,omitempty"`
}

// TenantsFile is the -tenants-file document.
type TenantsFile struct {
	// Anonymous names the tenant unauthenticated requests run as. It
	// owns the unprefixed root model namespace (pre-tenancy back
	// compat). Empty rejects unauthenticated requests with 401.
	Anonymous string `json:"anonymous,omitempty"`
	// Defaults seeds every tenant's limits (overridden per tenant).
	Defaults *Limits        `json:"defaults,omitempty"`
	Tenants  []TenantConfig `json:"tenants"`
}

// Tenant is the resolved runtime identity attached to each admitted
// request. It is an immutable snapshot — reloads build new Tenant
// values over the same persistent limiter state.
type Tenant struct {
	// ID is the tenant name ("anon" for the built-in default identity
	// when no tenants file is configured).
	ID string
	// Scope is the model-key prefix ("" for the root namespace,
	// "<id>/" otherwise).
	Scope string
	// Priority is the global-shed class (PriorityLow..PriorityHigh).
	Priority int
	disabled bool
	limits   Limits
	state    *tenantState
	maxWait  time.Duration
}

// Limits reports the tenant's resolved limits (for /debug/admission).
func (t *Tenant) Limits() Limits { return t.limits }

// ScopedName maps a tenant-visible model name to its store key.
func (t *Tenant) ScopedName(name string) string {
	if t == nil {
		return name
	}
	return t.Scope + name
}

// tenantState is the persistent limiter state for one tenant ID. It
// survives reloads so a reload cannot mint burst tokens or forget
// in-flight requests.
type tenantState struct {
	requests  *bucket
	rows      *bucket
	batchRows *bucket
	inflight  *quota
}

// parseTenantsFile reads and validates a tenants file. Validation is
// strict: a malformed file must never half-apply.
func parseTenantsFile(path string) (*TenantsFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var f TenantsFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if err := f.validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func (f *TenantsFile) validate() error {
	if len(f.Tenants) == 0 {
		return errors.New("no tenants configured")
	}
	ids := make(map[string]bool, len(f.Tenants))
	tokens := make(map[string]string, len(f.Tenants))
	for i, tc := range f.Tenants {
		if tc.ID == "" {
			return fmt.Errorf("tenant %d: missing id", i)
		}
		if strings.ContainsAny(tc.ID, "/ \t\n\"") {
			return fmt.Errorf("tenant %q: id must not contain slashes, spaces or quotes", tc.ID)
		}
		if ids[tc.ID] {
			return fmt.Errorf("tenant %q: duplicate id", tc.ID)
		}
		ids[tc.ID] = true
		if tc.Token == "" && tc.ID != f.Anonymous {
			return fmt.Errorf("tenant %q: missing token (only the anonymous tenant may omit it)", tc.ID)
		}
		if tc.Token != "" {
			if other, dup := tokens[tc.Token]; dup {
				return fmt.Errorf("tenants %q and %q: duplicate token", other, tc.ID)
			}
			tokens[tc.Token] = tc.ID
		}
		if tc.Priority != nil && (*tc.Priority < PriorityLow || *tc.Priority > PriorityHigh) {
			return fmt.Errorf("tenant %q: priority %d out of range [0, 2]", tc.ID, *tc.Priority)
		}
	}
	if f.Anonymous != "" && !ids[f.Anonymous] {
		return fmt.Errorf("anonymous tenant %q not in tenants list", f.Anonymous)
	}
	return nil
}
