package admission

// The rr_admission_* metric family. Every per-tenant series is labeled
// with the tenant ID, whose cardinality is bounded by the tenants file.

import "ratiorules/internal/obs"

type admissionMetrics struct {
	// requests counts request-level decisions by tenant and outcome:
	// allowed | rate_limited | over_quota | shed | unauthorized |
	// forbidden.
	requests *obs.CounterVec
	// rows counts streamed-row decisions by tenant, stream kind
	// (ingest | batch) and outcome (allowed | shed).
	rows *obs.CounterVec
	// inflight tracks admitted requests currently running per tenant;
	// globalInflight the total against the shedding ceiling.
	inflight       *obs.GaugeVec
	globalInflight *obs.Gauge
	// queueDepth is the total waiters across model ingest queues;
	// queueSheds counts rows shed at a full ingest queue.
	queueDepth *obs.Gauge
	queueSheds *obs.CounterVec
	// wait observes time spent queued before admission, by tenant and
	// wait point (quota | ingest_queue | rows).
	wait *obs.HistogramVec
	// reloads counts tenant-registry reloads by result (ok | error);
	// tenants is the registry size after the last successful load.
	reloads *obs.CounterVec
	tenants *obs.Gauge
}

func newAdmissionMetrics(r *obs.Registry) *admissionMetrics {
	return &admissionMetrics{
		requests: r.CounterVec("rr_admission_requests_total",
			"Request-level admission decisions by tenant and outcome.",
			"tenant", "decision"),
		rows: r.CounterVec("rr_admission_rows_total",
			"Streamed-row admission decisions by tenant, stream and outcome.",
			"tenant", "stream", "decision"),
		inflight: r.GaugeVec("rr_admission_in_flight",
			"Admitted requests currently executing, per tenant.", "tenant"),
		globalInflight: r.Gauge("rr_admission_global_in_flight",
			"Admitted requests currently executing against the global ceiling."),
		queueDepth: r.Gauge("rr_admission_ingest_queue_depth",
			"Waiters queued across all model ingest admission queues."),
		queueSheds: r.CounterVec("rr_admission_ingest_queue_sheds_total",
			"Ingest rows shed because a model's admission queue was full.", "tenant"),
		wait: r.HistogramVec("rr_admission_wait_seconds",
			"Time spent queued before admission.", obs.DefBuckets, "tenant", "point"),
		reloads: r.CounterVec("rr_admission_tenant_reloads_total",
			"Tenant-registry reload attempts by result.", "result"),
		tenants: r.Gauge("rr_admission_tenants",
			"Tenants in the registry after the last successful load."),
	}
}
