package admission

// Token buckets are the rate-limiting primitive: a bucket refills at a
// fixed rate up to a burst capacity, and each admitted unit (one
// request, one streamed row) takes one token. Buckets are lazy — no
// background refill goroutine; the available balance is recomputed from
// the elapsed time on every take — so an idle tenant costs nothing.

import (
	"sync"
	"time"
)

// bucket is one token bucket. A nil bucket admits everything (the
// unlimited case), so callers never branch on configuration.
type bucket struct {
	mu sync.Mutex
	// rate is tokens per second; burst is the capacity the balance can
	// accumulate to while idle.
	rate  float64
	burst float64
	// tokens is the balance as of last. It may go slightly negative
	// transiently inside take, never when take reports ok.
	tokens float64
	last   time.Time
}

// newBucket builds a bucket that starts full. rate <= 0 means
// unlimited: newBucket returns nil and every take succeeds.
func newBucket(rate, burst float64) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst < rate {
		burst = rate
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// refillLocked advances the balance to now. Callers hold mu.
func (b *bucket) refillLocked(now time.Time) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take removes n tokens if available. When the balance is short it
// reports ok=false and how long until n tokens will have refilled —
// the Retry-After the caller surfaces to the client.
func (b *bucket) take(n float64) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	if need > b.burst {
		// n exceeds the burst capacity outright: it will never fit in
		// one take. Report the time to refill a full burst; chunked
		// callers (rowGate) fall back to smaller draws.
		need = b.burst
	}
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// takeUpTo removes up to n tokens, returning how many it got (possibly
// zero). Row gates use it to drain whatever allowance is left instead
// of failing a full chunk draw outright.
func (b *bucket) takeUpTo(n float64) float64 {
	if b == nil {
		return n
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	got := b.tokens
	if got > n {
		got = n
	}
	if got < 0 {
		got = 0
	}
	b.tokens -= got
	return got
}

// refund returns unspent tokens (clamped to burst). Row gates refund
// the tail of a chunk when a stream ends early.
func (b *bucket) refund(n float64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// setRate retunes the bucket in place on a tenant-file reload. The
// current balance is clamped to the new burst so a reload can only
// shrink outstanding allowance, never mint tokens.
func (b *bucket) setRate(rate, burst float64) {
	if b == nil {
		return
	}
	if burst < rate {
		burst = rate
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	b.rate, b.burst = rate, burst
	if b.tokens > burst {
		b.tokens = burst
	}
}

// available reports the current balance (for /debug/admission).
func (b *bucket) available() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	return b.tokens
}
