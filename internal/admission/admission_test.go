package admission

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ratiorules/internal/obs"
)

func writeTenants(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

const tenantsJSON = `{
  "anonymous": "acme",
  "defaults": {"requests_per_second": 100, "max_in_flight": 8},
  "tenants": [
    {"id": "acme", "token": "tok-acme"},
    {"id": "globex", "token": "tok-globex", "priority": 2,
     "limits": {"requests_per_second": 5, "request_burst": 5}},
    {"id": "initech", "token": "tok-initech", "priority": 0, "disabled": true}
  ]
}`

func TestControllerAuthenticate(t *testing.T) {
	c := newTestController(t, Config{TenantsFile: writeTenants(t, tenantsJSON)})

	anon, err := c.Authenticate("")
	if err != nil || anon.ID != "acme" {
		t.Fatalf("anonymous auth = (%v, %v), want acme", anon, err)
	}
	if anon.Scope != "" {
		t.Fatalf("anonymous tenant scope = %q, want root", anon.Scope)
	}
	gx, err := c.Authenticate("tok-globex")
	if err != nil || gx.ID != "globex" {
		t.Fatalf("globex auth = (%v, %v)", gx, err)
	}
	if gx.Scope != "globex/" || gx.Priority != PriorityHigh {
		t.Fatalf("globex scope/priority = %q/%d", gx.Scope, gx.Priority)
	}
	if gx.ScopedName("m1") != "globex/m1" {
		t.Fatalf("ScopedName = %q", gx.ScopedName("m1"))
	}
	if _, err := c.Authenticate("nope"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown token err = %v, want ErrUnauthorized", err)
	}
	if _, err := c.Authenticate("tok-initech"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("disabled tenant err = %v, want ErrForbidden", err)
	}
}

func TestControllerNilAdmitsEverything(t *testing.T) {
	var c *Controller
	tn, err := c.Authenticate("whatever")
	if tn != nil || err != nil {
		t.Fatalf("nil controller auth = (%v, %v)", tn, err)
	}
	release, err := c.AdmitRequest(context.Background(), nil, false)
	if err != nil {
		t.Fatalf("nil controller admit: %v", err)
	}
	release()
	if err := c.RowGate(nil, false).Take(context.Background()); err != nil {
		t.Fatalf("nil controller row gate: %v", err)
	}
}

func TestControllerSingleTenantMode(t *testing.T) {
	c := newTestController(t, Config{Defaults: Limits{RequestsPerSecond: 2, RequestBurst: 2}})
	tn, err := c.Authenticate("")
	if err != nil || tn.ID != AnonymousID || tn.Scope != "" {
		t.Fatalf("single-tenant auth = (%+v, %v)", tn, err)
	}
	// Tokens are ignored (no registry): still anonymous? No — unknown
	// tokens must still 401 so a typo'd token is not silently anonymous.
	if _, err := c.Authenticate("bogus"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown token in single-tenant mode = %v, want ErrUnauthorized", err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		release, err := c.AdmitRequest(ctx, tn, false)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	_, err = c.AdmitRequest(ctx, tn, false)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third admit = %v, want ErrRateLimited", err)
	}
	if RetryAfterOf(err) <= 0 {
		t.Fatal("rate-limit error carries no Retry-After")
	}
}

func TestControllerQuotaAndRelease(t *testing.T) {
	c := newTestController(t, Config{
		TenantsFile: writeTenants(t, `{"tenants":[
			{"id":"a","token":"ta","limits":{"max_in_flight":1,"max_wait_ms":-1}}]}`),
	})
	tn, err := c.Authenticate("ta")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	release, err := c.AdmitRequest(ctx, tn, false)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if _, err := c.AdmitRequest(ctx, tn, false); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("second admit = %v, want ErrOverQuota", err)
	}
	release()
	release2, err := c.AdmitRequest(ctx, tn, false)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	release2()
}

func TestControllerStreamSkipsRequestBucket(t *testing.T) {
	c := newTestController(t, Config{Defaults: Limits{RequestsPerSecond: 1, RequestBurst: 1}})
	tn, _ := c.Authenticate("")
	ctx := context.Background()
	// Streams bypass the request bucket; many admits must succeed.
	for i := 0; i < 10; i++ {
		release, err := c.AdmitRequest(ctx, tn, true)
		if err != nil {
			t.Fatalf("stream admit %d: %v", i, err)
		}
		release()
	}
}

func TestGlobalCeilingShedsLowPriorityFirst(t *testing.T) {
	c := newTestController(t, Config{
		GlobalInFlight: 10,
		TenantsFile: writeTenants(t, `{"tenants":[
			{"id":"low","token":"tl","priority":0},
			{"id":"high","token":"th","priority":2}]}`),
	})
	low, _ := c.Authenticate("tl")
	high, _ := c.Authenticate("th")
	ctx := context.Background()

	var releases []func()
	for i := 0; i < 6; i++ { // fill to 60% of ceiling
		r, err := c.AdmitRequest(ctx, high, false)
		if err != nil {
			t.Fatalf("high admit %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	// Low priority sheds at >= 60% of the ceiling...
	if _, err := c.AdmitRequest(ctx, low, false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("low-priority admit at 60%% = %v, want ErrOverloaded", err)
	}
	// ...while high priority still gets the remaining headroom.
	for i := 0; i < 4; i++ {
		r, err := c.AdmitRequest(ctx, high, false)
		if err != nil {
			t.Fatalf("high admit at %d/10: %v", 6+i, err)
		}
		releases = append(releases, r)
	}
	if _, err := c.AdmitRequest(ctx, high, false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("high-priority admit at ceiling = %v, want ErrOverloaded", err)
	}
	for _, r := range releases {
		r()
	}
	if r, err := c.AdmitRequest(ctx, low, false); err != nil {
		t.Fatalf("low-priority admit after drain: %v", err)
	} else {
		r()
	}
}

// TestGlobalInflightGaugeReturnsToZero pins the metric bookkeeping:
// the rr_admission_global_in_flight gauge must track releases, not
// just admits — it once stuck at the last admit's count forever.
func TestGlobalInflightGaugeReturnsToZero(t *testing.T) {
	metrics := obs.NewRegistry()
	c := newTestController(t, Config{GlobalInFlight: 4, Metrics: metrics})
	gauge := func() float64 {
		for _, s := range metrics.Gather() {
			if s.Name == "rr_admission_global_in_flight" {
				return s.Value
			}
		}
		return -1
	}
	ctx := context.Background()
	r1, err := c.AdmitRequest(ctx, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.AdmitRequest(ctx, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := gauge(); g != 2 {
		t.Fatalf("gauge after 2 admits = %v, want 2", g)
	}
	r1()
	if g := gauge(); g != 1 {
		t.Fatalf("gauge after 1 release = %v, want 1", g)
	}
	r2()
	if g := gauge(); g != 0 {
		t.Fatalf("gauge after all releases = %v, want 0", g)
	}
}

func TestRowGateShedsAndRefunds(t *testing.T) {
	c := newTestController(t, Config{
		MaxWait:  time.Millisecond,
		Defaults: Limits{RowsPerSecond: 50, RowBurst: 50},
	})
	tn, _ := c.Authenticate("")
	g := c.RowGate(tn, false)
	ctx := context.Background()
	admitted := 0
	var shedErr error
	for i := 0; i < 200; i++ {
		if err := g.Take(ctx); err != nil {
			shedErr = err
			break
		}
		admitted++
	}
	if shedErr == nil {
		t.Fatal("row gate never shed at 50 rows/s burst 50 over 200 rows")
	}
	if !errors.Is(shedErr, ErrRateLimited) {
		t.Fatalf("shed error = %v, want ErrRateLimited", shedErr)
	}
	if RetryAfterOf(shedErr) <= 0 {
		t.Fatal("row shed carries no Retry-After")
	}
	if admitted < 50 {
		t.Fatalf("admitted %d rows, want >= burst 50", admitted)
	}
	g.Close()
}

func TestRowGateBatchBucketIsSeparate(t *testing.T) {
	c := newTestController(t, Config{
		MaxWait:  time.Millisecond,
		Defaults: Limits{RowsPerSecond: 10, RowBurst: 10, BatchRowsPerSecond: 1000, BatchRowBurst: 1000},
	})
	tn, _ := c.Authenticate("")
	ctx := context.Background()
	ig := c.RowGate(tn, false)
	for { // drain the ingest bucket
		if err := ig.Take(ctx); err != nil {
			break
		}
	}
	ig.Close()
	bg := c.RowGate(tn, true)
	defer bg.Close()
	for i := 0; i < 100; i++ {
		if err := bg.Take(ctx); err != nil {
			t.Fatalf("batch row %d blocked by drained ingest bucket: %v", i, err)
		}
	}
}

func TestIngestSlotQueueBounds(t *testing.T) {
	c := newTestController(t, Config{IngestQueue: 1, MaxWait: 20 * time.Millisecond})
	ctx := context.Background()
	release, err := c.IngestSlot(ctx, nil, "m")
	if err != nil {
		t.Fatalf("first slot: %v", err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := c.IngestSlot(ctx, nil, "m")
			if err == nil {
				r()
			}
			errs <- err
		}()
	}
	// One waiter queues (and sheds after MaxWait since the slot is
	// held); the overflow waiter sheds immediately. Both end OverQuota.
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrOverQuota) {
			t.Fatalf("queued ingest err = %v, want ErrOverQuota", err)
		}
	}
	release()
	r2, err := c.IngestSlot(ctx, nil, "m")
	if err != nil {
		t.Fatalf("slot after release: %v", err)
	}
	r2()
	c.DropIngestQueue("m")
}

func TestReloadKeepsStateAndLastGood(t *testing.T) {
	path := writeTenants(t, `{"tenants":[
		{"id":"a","token":"ta","limits":{"requests_per_second":10,"request_burst":100}}]}`)
	c := newTestController(t, Config{TenantsFile: path})
	tn, _ := c.Authenticate("ta")
	// Spend most of the burst.
	for i := 0; i < 90; i++ {
		if r, err := c.AdmitRequest(context.Background(), tn, false); err == nil {
			r()
		}
	}
	// Reload with a smaller burst: balance must clamp, not refill.
	if err := os.WriteFile(path, []byte(`{"tenants":[
		{"id":"a","token":"ta","limits":{"requests_per_second":10,"request_burst":20}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	tn2, err := c.Authenticate("ta")
	if err != nil {
		t.Fatal(err)
	}
	if tn2.state != tn.state {
		t.Fatal("reload rebuilt tenant state instead of preserving it")
	}
	if bal := tn2.state.requests.available(); bal > 21 {
		t.Fatalf("reload minted tokens: balance %v > new burst 20", bal)
	}

	// A broken file keeps the last-good registry serving.
	if err := os.WriteFile(path, []byte(`{broken`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Reload(); err == nil {
		t.Fatal("reload of a broken file should error")
	}
	if _, err := c.Authenticate("ta"); err != nil {
		t.Fatalf("last-good registry stopped serving after failed reload: %v", err)
	}
	h := c.Health()
	if h.ReloadError == "" {
		t.Fatal("failed reload not surfaced in Health")
	}
}

func TestRunPollsFileChanges(t *testing.T) {
	path := writeTenants(t, `{"tenants":[{"id":"a","token":"ta"}]}`)
	c := newTestController(t, Config{TenantsFile: path, PollInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)

	if _, err := c.Authenticate("tb"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("pre-reload auth = %v", err)
	}
	// Rewrite with a new tenant and a bumped mtime.
	if err := os.WriteFile(path, []byte(`{"tenants":[
		{"id":"a","token":"ta"},{"id":"b","token":"tb"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Second)
	_ = os.Chtimes(path, future, future)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Authenticate("tb"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poll loop never picked up the rewritten tenants file")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestParseTenantsFileValidation(t *testing.T) {
	cases := []struct{ name, body string }{
		{"empty tenants", `{"tenants":[]}`},
		{"missing id", `{"tenants":[{"token":"t"}]}`},
		{"slash in id", `{"tenants":[{"id":"a/b","token":"t"}]}`},
		{"duplicate id", `{"tenants":[{"id":"a","token":"t1"},{"id":"a","token":"t2"}]}`},
		{"duplicate token", `{"tenants":[{"id":"a","token":"t"},{"id":"b","token":"t"}]}`},
		{"missing token", `{"tenants":[{"id":"a"}]}`},
		{"bad priority", `{"tenants":[{"id":"a","token":"t","priority":9}]}`},
		{"anonymous not listed", `{"anonymous":"ghost","tenants":[{"id":"a","token":"t"}]}`},
		{"unknown field", `{"tenants":[{"id":"a","token":"t","typo_field":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseTenantsFile(writeTenants(t, tc.body)); err == nil {
				t.Fatalf("parse accepted invalid file: %s", tc.body)
			}
		})
	}
	// And the happy path with an anonymous tenant omitting its token.
	f, err := parseTenantsFile(writeTenants(t, `{"anonymous":"pub","tenants":[{"id":"pub"}]}`))
	if err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	if f.Anonymous != "pub" {
		t.Fatalf("anonymous = %q", f.Anonymous)
	}
}

func TestSnapshotShape(t *testing.T) {
	c := newTestController(t, Config{
		TenantsFile:    writeTenants(t, tenantsJSON),
		GlobalInFlight: 32,
	})
	tn, _ := c.Authenticate("tok-globex")
	release, err := c.AdmitRequest(context.Background(), tn, false)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	s := c.Snapshot()
	if len(s.Tenants) != 3 {
		t.Fatalf("snapshot tenants = %d, want 3", len(s.Tenants))
	}
	// Sorted: acme, globex, initech.
	if s.Tenants[0].ID != "acme" || !s.Tenants[0].Anonymous {
		t.Fatalf("first snapshot tenant = %+v", s.Tenants[0])
	}
	gx := s.Tenants[1]
	if gx.ID != "globex" || gx.InFlight != 1 {
		t.Fatalf("globex snapshot = %+v", gx)
	}
	if gx.RequestTokens == nil || *gx.RequestTokens > 5 {
		t.Fatalf("globex request tokens = %v, want <= burst 5", gx.RequestTokens)
	}
	if !s.Tenants[2].Disabled {
		t.Fatal("initech not marked disabled in snapshot")
	}
	if s.GlobalCeiling != 32 || s.GlobalInFlight != 1 {
		t.Fatalf("global snapshot = %d/%d", s.GlobalInFlight, s.GlobalCeiling)
	}
}
