package admission

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestQuotaUnlimited(t *testing.T) {
	q := newQuota(0, 0)
	for i := 0; i < 100; i++ {
		if !q.tryAcquire() {
			t.Fatalf("unlimited quota rejected acquire %d", i)
		}
	}
	used, _, _ := q.state()
	if used != 100 {
		t.Fatalf("used = %d, want 100 (counts even when unlimited)", used)
	}
}

func TestQuotaBoundsAndWaitingRoom(t *testing.T) {
	q := newQuota(2, 1)
	if !q.tryAcquire() || !q.tryAcquire() {
		t.Fatal("first two acquires should succeed")
	}
	if q.tryAcquire() {
		t.Fatal("third tryAcquire should fail at cap 2")
	}
	// One waiter fits in the room; a second is rejected immediately.
	start := time.Now()
	if q.acquire(context.Background(), time.Millisecond) {
		t.Fatal("waiter should time out while both slots are held")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("bounded wait overshot wildly")
	}
}

func TestQuotaFIFOHandoff(t *testing.T) {
	q := newQuota(1, 10)
	if !q.tryAcquire() {
		t.Fatal("initial acquire failed")
	}
	order := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			if q.acquire(context.Background(), time.Second) {
				order <- i
				q.release()
			}
		}()
		time.Sleep(10 * time.Millisecond) // establish arrival order
	}
	q.release()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("handoff order got %d, want %d (FIFO)", got, want)
		}
		want++
	}
	if want != 3 {
		t.Fatalf("only %d waiters served, want 3", want)
	}
}

func TestQuotaWaitingRoomOverflowShedsFast(t *testing.T) {
	q := newQuota(1, 1)
	q.tryAcquire()
	go q.acquire(context.Background(), time.Second) // fills the room
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	if q.acquire(context.Background(), time.Second) {
		t.Fatal("overflow acquire should fail fast")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("overflow shed took %v, want immediate", d)
	}
	q.release() // serve the queued waiter
}

func TestQuotaContextCancel(t *testing.T) {
	q := newQuota(1, 5)
	q.tryAcquire()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- q.acquire(ctx, time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("canceled acquire reported success")
		}
	case <-time.After(time.Second):
		t.Fatal("canceled acquire did not return")
	}
	// The withdrawn waiter must not absorb the next release.
	q.release()
	if !q.tryAcquire() {
		t.Fatal("slot lost after canceled waiter withdrew")
	}
}

func TestQuotaSetCapDrainsWaiters(t *testing.T) {
	q := newQuota(1, 5)
	q.tryAcquire()
	done := make(chan bool, 1)
	go func() { done <- q.acquire(context.Background(), time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	q.setCap(2, 5) // growing the cap should admit the waiter immediately
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiter rejected after cap grew")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not drained after cap grew")
	}
	used, capSlots, _ := q.state()
	if used != 2 || capSlots != 2 {
		t.Fatalf("state = (%d used, %d cap), want (2, 2)", used, capSlots)
	}
}

func TestQuotaReleaseHandsSlotExactlyOnce(t *testing.T) {
	q := newQuota(1, 1)
	q.tryAcquire()
	got := make(chan bool, 1)
	go func() { got <- q.acquire(context.Background(), time.Second) }()
	time.Sleep(10 * time.Millisecond)
	q.release()
	if ok := <-got; !ok {
		t.Fatal("queued waiter should receive the released slot")
	}
	if q.tryAcquire() {
		t.Fatal("slot double-granted: tryAcquire succeeded while handed off")
	}
}
