package admission

// RowGate meters streamed rows against a tenant's row bucket. The
// streaming handlers call Take once per NDJSON row; the gate draws
// tokens in chunks to keep the per-row cost to a counter decrement,
// absorbs short shortfalls by sleeping within the tenant's bounded
// wait, and sheds — returning a rate_limited LimitError carrying the
// Retry-After — when the wait would exceed it.

import (
	"context"
	"fmt"
	"time"
)

// rowChunk is how many tokens a gate draws from the shared bucket at
// once. Small enough not to starve sibling streams of the same tenant,
// large enough that the bucket mutex is off the per-row fast path.
const rowChunk = 32

// RowGate is a per-stream row admission gate. Not safe for concurrent
// use — each streaming request owns one.
type RowGate struct {
	c         *Controller
	tenant    *Tenant
	bucket    *bucket
	stream    string // "ingest" | "batch" metric label
	maxWait   time.Duration
	allowance float64 // tokens drawn but not yet spent
	allowed   uint64
}

// RowGate builds the gate for one streaming request. batch selects the
// batch-inference bucket instead of the ingest bucket. A nil controller
// or an unlimited tenant yields a gate whose Take never blocks.
func (c *Controller) RowGate(t *Tenant, batch bool) *RowGate {
	g := &RowGate{c: c, tenant: t, stream: "ingest", maxWait: DefaultMaxWait}
	if batch {
		g.stream = "batch"
	}
	if c == nil || t == nil {
		return g
	}
	g.maxWait = t.maxWait
	if batch {
		g.bucket = t.state.batchRows
	} else {
		g.bucket = t.state.rows
	}
	return g
}

// Take admits one row, sleeping up to the tenant's bounded wait for
// tokens to refill. A rate_limited error means the caller should emit
// a per-row error line and terminate the stream.
func (g *RowGate) Take(ctx context.Context) error {
	if g.bucket == nil {
		g.allowed++
		return nil
	}
	if g.allowance >= 1 {
		g.allowance--
		g.allowed++
		return nil
	}
	var slept time.Duration
	for {
		g.allowance += g.bucket.takeUpTo(rowChunk - g.allowance)
		if g.allowance >= 1 {
			if slept > 0 {
				g.c.metrics.wait.With(tenantLabel(g.tenant), "rows").Observe(slept.Seconds())
			}
			g.allowance--
			g.allowed++
			return nil
		}
		_, retry := g.bucket.take(1)
		if retry <= 0 {
			retry = time.Millisecond
		}
		if slept+retry > g.maxWait {
			g.c.metrics.rows.With(tenantLabel(g.tenant), g.stream, "shed").Inc()
			return &LimitError{Sentinel: ErrRateLimited, RetryAfter: retry,
				Detail: fmt.Sprintf("tenant %q %s row rate exceeded", tenantLabel(g.tenant), g.stream)}
		}
		timer := time.NewTimer(retry)
		select {
		case <-timer.C:
			slept += retry
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
}

// Close flushes the gate's row tally into the admission metrics and
// returns unspent allowance to the bucket so a short stream does not
// strand most of a chunk.
func (g *RowGate) Close() {
	if g.c == nil {
		return
	}
	if g.allowed > 0 {
		g.c.metrics.rows.With(tenantLabel(g.tenant), g.stream, "allowed").Add(float64(g.allowed))
		g.allowed = 0
	}
	if g.bucket != nil && g.allowance > 0 {
		g.bucket.refund(g.allowance)
		g.allowance = 0
	}
}
