// Package ratiorules implements Ratio Rules, the data-mining paradigm of
// Korn, Labrinidis, Kotidis and Faloutsos, "Ratio Rules: A New Paradigm for
// Fast, Quantifiable Data Mining" (VLDB 1998).
//
// A Ratio Rule is an eigenvector of the covariance matrix of a numeric
// N×M data matrix (e.g. customers × products): it captures the ratios in
// which attribute values co-occur, such as "customers typically spend
// 1:2:5 dollars on bread:milk:butter". Unlike Boolean or quantitative
// association rules, Ratio Rules support reconstruction of missing values,
// which makes the quality of a rule set quantifiable through the paper's
// "guessing error" and enables forecasting, what-if analysis, outlier
// detection, data cleaning and visualization.
//
// # Mining
//
// Rules are mined in a single pass over the data — column averages and the
// covariance matrix are accumulated streamingly, then an in-memory
// eigensolve ranks the directions of greatest variance and the 85%-energy
// cutoff (Eq. 1 of the paper) decides how many rules to keep. Every entry
// point is configured by the same Opt setters over one Options struct:
//
//	rules, err := ratiorules.Mine(x, ratiorules.AttrNames(names...))
//	rules, err := ratiorules.MineRows(rows, ratiorules.Energy(0.9))
//	rules, err := ratiorules.MineStream(src)    // streaming RowSource
//
// # Reconstruction and applications
//
//	full, err := ratiorules.Fill(rules, []float64{10, 3, ratiorules.Hole}, nil)
//	ge, err := ratiorules.GE1(rules, testMatrix) // quality of the rule set
//	out, err := rules.CellOutliers(x, 2)         // 2-sigma outliers
//	fc, err := rules.Forecast(map[int]float64{0: 1.0, 1: 2.5}, 2)
//	xy, err := rules.Project(x, 2)               // 2-d visualization
//
// # Batch inference
//
// The Batch* calls answer many rows at once on a bounded worker pool,
// reusing one solver factorization per distinct hole pattern (see
// internal/core's plan cache); Clean repairs a whole matrix in place:
//
//	res := ratiorules.BatchFill(rules, rows, nil, ratiorules.Workers(8))
//	n, err := ratiorules.Clean(rules, x)
//
// The package is a facade over internal/core and its numeric substrates
// (all implemented from scratch on the standard library): dense matrices,
// a symmetric eigensolver, SVD with Moore–Penrose pseudo-inverse, and
// LU/QR solvers.
package ratiorules

import (
	"io"

	"ratiorules/internal/core"
	"ratiorules/internal/dataset"
	"ratiorules/internal/matrix"
)

// Core types, aliased so the public surface and the implementation cannot
// drift apart.
type (
	// Rules is a mined, immutable set of Ratio Rules.
	Rules = core.Rules
	// Miner configures and runs rule mining.
	Miner = core.Miner
	// Option customizes a Miner.
	Option = core.Option
	// RowSource streams data-matrix rows for single-pass mining.
	RowSource = core.RowSource
	// Estimator reconstructs hidden cells of a record; Rules, ColAvgs and
	// regress.Model all satisfy it, so the guessing error can rank any of
	// them (the paper's Sec. 4.3 point).
	Estimator = core.Estimator
	// ColAvgs is the paper's straightforward competitor (k = 0 rules).
	ColAvgs = core.ColAvgs
	// GEhConfig controls the h-hole guessing error.
	GEhConfig = core.GEhConfig
	// Scenario is a partial record for what-if analysis.
	Scenario = core.Scenario
	// CellOutlier and RowOutlier are outlier-detection results.
	CellOutlier = core.CellOutlier
	RowOutlier  = core.RowOutlier
	// FillSolver selects the over-specified hole-filling algorithm.
	FillSolver = core.FillSolver
	// BandedFill is a reconstruction with 1-sigma uncertainty per filled
	// cell (see Rules.FillRecordWithBands).
	BandedFill = core.BandedFill
	// Matrix is the dense row-major matrix type used throughout.
	Matrix = matrix.Dense
	// SparseVec is a sparse row for wide, mostly-zero matrices (market
	// baskets); mine them with Miner.MineSparse.
	SparseVec = matrix.SparseVec
	// SparseRowSource streams sparse rows for single-pass sparse mining.
	SparseRowSource = core.SparseRowSource
)

// Sentinel errors, re-exported for errors.Is checks.
var (
	ErrNoRules = core.ErrNoRules
	ErrBadHole = core.ErrBadHole
	ErrWidth   = core.ErrWidth
)

// Hole marks an unknown cell in a record passed to Rules.FillRecord.
var Hole = core.Hole

// IsHole reports whether a value is the Hole marker.
func IsHole(v float64) bool { return core.IsHole(v) }

// DefaultEnergy is the paper's Eq. 1 cutoff threshold (85%).
const DefaultEnergy = core.DefaultEnergy

// Solver choices for the over-specified hole-filling case.
const (
	// SolvePseudoInverse follows the paper (Eqs. 7-9); the default.
	SolvePseudoInverse = core.SolvePseudoInverse
	// SolveQR uses Householder least squares instead.
	SolveQR = core.SolveQR
)

// NewMiner returns a Miner with the paper's defaults: single-pass
// covariance accumulation, tred2/tql2 eigensolver and the 85% energy
// cutoff.
//
// Deprecated: use Mine, MineRows or MineStream with Opt setters (raw
// core options still apply through MinerOpts), or CoreMiner when the
// Miner method surface itself is needed.
func NewMiner(opts ...Option) (*Miner, error) { return core.NewMiner(opts...) }

// WithEnergy sets the Eq. 1 variance-coverage threshold in (0, 1].
func WithEnergy(fraction float64) Option { return core.WithEnergy(fraction) }

// WithFixedK retains exactly k rules (k = 0 degenerates to col-avgs).
func WithFixedK(k int) Option { return core.WithFixedK(k) }

// WithMaxK caps the rule count after the energy cutoff.
func WithMaxK(k int) Option { return core.WithMaxK(k) }

// WithAttrNames attaches attribute names to the mined rules.
func WithAttrNames(names []string) Option { return core.WithAttrNames(names) }

// WithJacobiSolver selects the cyclic Jacobi eigensolver (slower; kept for
// cross-checking and ablation).
func WithJacobiSolver() Option { return core.WithJacobiSolver() }

// WithSubspaceSolver extracts only the leading eigenpairs by block power
// iteration — the strategy the paper's footnote 1 recommends for large M.
// Requires WithFixedK or WithMaxK.
func WithSubspaceSolver() Option { return core.WithSubspaceSolver() }

// WithLanczosSolver extracts the leading eigenpairs with Lanczos (full
// reorthogonalization), the fastest choice when k ≪ M. Requires
// WithFixedK or WithMaxK.
func WithLanczosSolver() Option { return core.WithLanczosSolver() }

// LoadStreamMiner restores a StreamMiner checkpoint written with
// StreamMiner.Save; resuming and pushing the remaining rows reproduces an
// uninterrupted run exactly.
func LoadStreamMiner(r io.Reader, opts ...Option) (*StreamMiner, error) {
	return core.LoadStreamMiner(r, opts...)
}

// Robust-mining extension: alternate mining with row-outlier trimming so a
// few grossly corrupted records cannot rotate the rules.
type (
	RobustConfig = core.RobustConfig
	RobustResult = core.RobustResult
)

// EM mining extension: mine directly from matrices with Hole-marked cells
// by iterating fill and re-mine (PCA-with-missing-data style), instead of
// discarding incomplete rows.
type (
	EMConfig = core.EMConfig
	EMResult = core.EMResult
)

// Weighted-row mining: count-compressed tables (identical baskets stored
// with a multiplicity) mine in one pass over the distinct rows.
type (
	WeightedRow         = core.WeightedRow
	WeightedRowSource   = core.WeightedRowSource
	WeightedSliceSource = core.WeightedSliceSource
)

// NewMatrixSource adapts an in-memory matrix to a RowSource.
func NewMatrixSource(m *Matrix) RowSource { return core.NewMatrixSource(m) }

// NewColAvgs builds the column-average competitor from training means.
func NewColAvgs(means []float64) *ColAvgs { return core.NewColAvgs(means) }

// FillMatrix repairs every Hole-marked cell of x in place using est and
// reports how many cells were filled — the batch form of FillRow.
//
// Deprecated: use Clean, which runs the same repair through the batch
// engine's worker pool and hole-pattern plan cache. FillMatrix remains
// for non-Rules Estimators (e.g. ColAvgs).
func FillMatrix(est Estimator, x *Matrix) (int, error) { return core.FillMatrix(est, x) }

// GE1 is the single-hole guessing error of Def. 1 (Eq. 3): the RMS error
// of reconstructing each cell of test from the rest of its row.
func GE1(est Estimator, test *Matrix) (float64, error) { return core.GE1(est, test) }

// GEh is the h-hole guessing error of Def. 2 (Eq. 4).
func GEh(est Estimator, test *Matrix, cfg GEhConfig) (float64, error) {
	return core.GEh(est, test, cfg)
}

// GECurve evaluates GEh for h = 1..maxHoles (the paper's Fig. 6 series).
func GECurve(est Estimator, test *Matrix, maxHoles int, cfg GEhConfig) ([]float64, error) {
	return core.GECurve(est, test, maxHoles, cfg)
}

// LoadRules reads a rule set previously written with Rules.Save.
func LoadRules(r io.Reader) (*Rules, error) { return core.Load(r) }

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return matrix.NewDense(rows, cols) }

// MatrixFromRows builds a matrix by copying the given equally-long rows.
func MatrixFromRows(rows [][]float64) (*Matrix, error) { return matrix.FromRows(rows) }

// NewSparseVec builds a validated sparse row from parallel index/value
// slices (indices sorted, distinct, in range).
func NewSparseVec(length int, idx []int, val []float64) (SparseVec, error) {
	return matrix.NewSparseVec(length, idx, val)
}

// SparsifyRow converts a dense row to sparse form, dropping |v| <= eps.
func SparsifyRow(row []float64, eps float64) SparseVec { return matrix.SparsifyRow(row, eps) }

// StreamMiner maintains the single-pass sufficient statistics
// incrementally so rules can be re-derived at any point of an unbounded
// stream, optionally with exponential decay to track drifting ratios.
// This extends the paper's one-pass algorithm to continuous operation.
type StreamMiner = core.StreamMiner

// NewStreamMiner returns a stream miner for rows of the given width with
// decay lambda in [0, 1); lambda = 0 reproduces batch mining exactly.
func NewStreamMiner(width int, lambda float64, opts ...Option) (*StreamMiner, error) {
	return core.NewStreamMiner(width, lambda, opts...)
}

// Categorical-data support (the paper's stated future work): one-hot
// encoding of mixed records so Ratio Rules can mine and reconstruct
// categorical fields.
type (
	// Field describes one column of a mixed record.
	Field = dataset.Field
	// CategoricalEncoder one-hot encodes mixed categorical/numeric
	// records and decodes reconstructed rows back (argmax per category).
	CategoricalEncoder = dataset.CategoricalEncoder
)

// NewCategoricalEncoder returns an encoder for the given mixed schema.
func NewCategoricalEncoder(fields []Field) *CategoricalEncoder {
	return dataset.NewCategoricalEncoder(fields)
}
