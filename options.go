package ratiorules

// The consolidated facade API: one Options struct configured by
// functional setters drives mining, filling, cleaning and the batch
// inference calls, replacing the older mix of positional entry points
// (NewMiner + method chains, FillMatrix). The old names remain as thin
// deprecated wrappers so existing callers compile.

import (
	"fmt"

	"ratiorules/internal/core"
)

// Batch types, re-exported from internal/core. The Batch* calls stream
// rows through a bounded worker pool and a per-model hole-pattern plan
// cache, so a large batch with few distinct hole sets pays each
// factorization once.
type (
	// BatchOptions tunes a batch run directly at the core layer; the
	// facade fills it from Options.
	BatchOptions = core.BatchOptions
	// FillJob / FillResult are one row of a batch fill.
	FillJob    = core.FillJob
	FillResult = core.FillResult
	// ForecastJob / ForecastResult are one query of a batch forecast.
	ForecastJob    = core.ForecastJob
	ForecastResult = core.ForecastResult
	// OutlierJob / OutlierResult are one record of a batch outlier scan.
	OutlierJob    = core.OutlierJob
	OutlierResult = core.OutlierResult
)

// ErrNoResiduals reports per-row outlier scoring on a legacy model
// mined without residual deviation bands.
var ErrNoResiduals = core.ErrNoResiduals

// DefaultOutlierSigma is the outlier threshold used when Options.Sigma
// is unset.
const DefaultOutlierSigma = core.DefaultOutlierSigma

// DefaultBatchWorkers is the worker-pool width used when
// Options.Workers is unset: one worker per available CPU.
func DefaultBatchWorkers() int { return core.DefaultBatchWorkers() }

// Options consolidates every knob of the facade entry points. The zero
// value selects the paper's defaults (85% energy cutoff, pseudo-inverse
// solver, 2-sigma outliers, one batch worker per CPU). Fields may be
// set directly or through the Opt setters.
type Options struct {
	// Energy is the Eq. 1 variance-coverage threshold in (0, 1];
	// 0 selects DefaultEnergy.
	Energy float64
	// FixedK, when non-nil, retains exactly *FixedK rules instead of
	// applying the energy cutoff.
	FixedK *int
	// MaxK, when positive, caps the rule count after the energy cutoff.
	MaxK int
	// AttrNames attaches attribute names to the mined rules.
	AttrNames []string
	// MinerOpts are extra core mining options (eigensolver selection,
	// ...) appended verbatim — the escape hatch to everything the Miner
	// API can configure.
	MinerOpts []Option

	// Solver picks the over-specified hole-filling algorithm.
	Solver FillSolver
	// Workers bounds the batch worker pool; 0 selects
	// DefaultBatchWorkers().
	Workers int
	// Sigma is the outlier threshold in residual standard deviations;
	// 0 selects DefaultOutlierSigma.
	Sigma float64
}

// Opt is a functional setter for Options.
type Opt func(*Options)

// Energy sets the Eq. 1 variance-coverage threshold in (0, 1].
func Energy(fraction float64) Opt { return func(o *Options) { o.Energy = fraction } }

// FixedK retains exactly k rules (k = 0 degenerates to col-avgs).
func FixedK(k int) Opt { return func(o *Options) { o.FixedK = &k } }

// MaxK caps the rule count after the energy cutoff.
func MaxK(k int) Opt { return func(o *Options) { o.MaxK = k } }

// AttrNames attaches attribute names to the mined rules.
func AttrNames(names ...string) Opt { return func(o *Options) { o.AttrNames = names } }

// Solver picks the over-specified hole-filling algorithm (fill,
// forecast and batch calls).
func Solver(s FillSolver) Opt { return func(o *Options) { o.Solver = s } }

// Workers bounds the batch worker pool width.
func Workers(n int) Opt { return func(o *Options) { o.Workers = n } }

// Sigma sets the outlier threshold in residual standard deviations.
func Sigma(s float64) Opt { return func(o *Options) { o.Sigma = s } }

// MinerOpts appends raw core mining options (WithJacobiSolver,
// WithSubspaceSolver, ...) for configuration the named setters do not
// cover.
func MinerOpts(opts ...Option) Opt {
	return func(o *Options) { o.MinerOpts = append(o.MinerOpts, opts...) }
}

// buildOptions folds the setters over a zero Options.
func buildOptions(opts []Opt) Options {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// minerOptions lowers Options onto the core miner configuration.
func (o Options) minerOptions() []Option {
	var out []Option
	if o.Energy > 0 {
		out = append(out, core.WithEnergy(o.Energy))
	}
	if o.FixedK != nil {
		out = append(out, core.WithFixedK(*o.FixedK))
	}
	if o.MaxK > 0 {
		out = append(out, core.WithMaxK(o.MaxK))
	}
	if o.AttrNames != nil {
		out = append(out, core.WithAttrNames(o.AttrNames))
	}
	return append(out, o.MinerOpts...)
}

// batchOptions lowers Options onto the core batch configuration.
func (o Options) batchOptions() BatchOptions {
	return BatchOptions{Workers: o.Workers, Solver: o.Solver, Sigma: o.Sigma}
}

// Mine mines Ratio Rules from an in-memory matrix:
//
//	rules, err := ratiorules.Mine(x, ratiorules.Energy(0.9),
//		ratiorules.AttrNames("bread", "milk", "butter"))
func Mine(x *Matrix, opts ...Opt) (*Rules, error) {
	miner, err := core.NewMiner(buildOptions(opts).minerOptions()...)
	if err != nil {
		return nil, err
	}
	return miner.MineMatrix(x)
}

// MineRows mines Ratio Rules from equally-long rows.
func MineRows(rows [][]float64, opts ...Opt) (*Rules, error) {
	x, err := MatrixFromRows(rows)
	if err != nil {
		return nil, err
	}
	return Mine(x, opts...)
}

// MineStream mines Ratio Rules in a single pass over a RowSource
// without materializing the matrix.
func MineStream(src RowSource, opts ...Opt) (*Rules, error) {
	miner, err := core.NewMiner(buildOptions(opts).minerOptions()...)
	if err != nil {
		return nil, err
	}
	return miner.Mine(src)
}

// CoreMiner builds the low-level Miner from the same Opt setters as
// Mine/MineRows/MineStream — the escape hatch to the extension surface
// that lives on Miner methods (MineSharded, MineSparse, MineWeighted,
// MineRobust, MineWithHoles).
func CoreMiner(opts ...Opt) (*Miner, error) {
	return core.NewMiner(buildOptions(opts).minerOptions()...)
}

// Fill reconstructs the listed holes of one record (nil holes derives
// them from Hole markers), honoring the Solver option.
func Fill(rules *Rules, record []float64, holes []int, opts ...Opt) ([]float64, error) {
	o := buildOptions(opts)
	if holes == nil {
		for j, v := range record {
			if IsHole(v) {
				holes = append(holes, j)
			}
		}
	}
	return rules.FillRowWith(record, holes, o.Solver)
}

// Clean repairs every Hole-marked cell of x in place through the batch
// engine and reports how many cells were filled.
func Clean(rules *Rules, x *Matrix, opts ...Opt) (int, error) {
	o := buildOptions(opts)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = x.RawRow(i)
	}
	filled := 0
	for _, res := range rules.BatchFillSlice(rows, nil, o.batchOptions()) {
		if res.Err != nil {
			return filled, fmt.Errorf("ratiorules: cleaning row %d: %w", res.Index, res.Err)
		}
		row := rows[res.Index]
		for j, v := range row {
			if IsHole(v) {
				row[j] = res.Filled[j]
				filled++
			}
		}
	}
	return filled, nil
}

// BatchFill fills rows[i] with hole set holes[i] (nil holes, or a nil
// entry, derives holes from Hole markers) on the worker pool, reusing
// cached hole-pattern factorizations. Results are indexed like rows; a
// failed row reports its error without affecting the others.
func BatchFill(rules *Rules, rows [][]float64, holes [][]int, opts ...Opt) []FillResult {
	return rules.BatchFillSlice(rows, holes, buildOptions(opts).batchOptions())
}

// BatchForecast answers the forecasting queries on the worker pool.
func BatchForecast(rules *Rules, queries []ForecastJob, opts ...Opt) []ForecastResult {
	return rules.BatchForecastSlice(queries, buildOptions(opts).batchOptions())
}

// BatchOutliers scores each record's cells against the model's
// training residual bands on the worker pool. Models mined before
// residual bands existed report ErrNoResiduals per row.
func BatchOutliers(rules *Rules, rows [][]float64, opts ...Opt) []OutlierResult {
	return rules.BatchOutliersSlice(rows, buildOptions(opts).batchOptions())
}
