package ratiorules_test

import (
	"math"
	"strings"
	"testing"

	"ratiorules"
)

// TestFacadeWrappers exercises every thin delegation of the public facade
// so a drifting signature or a broken re-export is caught at the package
// boundary, not by a downstream user.
func TestFacadeWrappers(t *testing.T) {
	x := grocery(300, 40)

	// Option constructors.
	miner, err := ratiorules.NewMiner(
		ratiorules.WithEnergy(0.9),
		ratiorules.WithMaxK(2),
		ratiorules.WithAttrNames([]string{"bread", "milk", "butter"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if rules.K() < 1 || rules.K() > 2 {
		t.Fatalf("K = %d", rules.K())
	}

	// Jacobi and fixed-k options.
	jm, err := ratiorules.NewMiner(ratiorules.WithFixedK(1), ratiorules.WithJacobiSolver())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jm.MineMatrix(x); err != nil {
		t.Fatal(err)
	}

	// Subspace and Lanczos solvers.
	for _, opt := range []ratiorules.Option{ratiorules.WithSubspaceSolver(), ratiorules.WithLanczosSolver()} {
		sm, err := ratiorules.NewMiner(ratiorules.WithFixedK(1), opt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sm.MineMatrix(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Eigenvalues()[0]-rules.Eigenvalues()[0]) > 1e-5*(1+rules.Eigenvalues()[0]) {
			t.Error("leading-pair solver disagrees with full solve")
		}
	}

	// GEh through the facade.
	geh, err := ratiorules.GEh(rules, x, ratiorules.GEhConfig{Holes: 2, SetsPerRow: 3})
	if err != nil {
		t.Fatal(err)
	}
	if geh <= 0 {
		t.Errorf("GEh = %v", geh)
	}

	// Sparse helpers.
	sv, err := ratiorules.NewSparseVec(3, []int{1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if sv.At(1) != 2 {
		t.Errorf("sparse At = %v", sv.At(1))
	}
	if got := ratiorules.SparsifyRow([]float64{0, 5, 0}, 0); got.NNZ() != 1 {
		t.Errorf("SparsifyRow NNZ = %d", got.NNZ())
	}

	// Weighted mining through the facade.
	wm, err := ratiorules.NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	wrules, err := wm.MineWeighted(&ratiorules.WeightedSliceSource{
		Rows: []ratiorules.WeightedRow{
			{Row: []float64{1, 2}, Weight: 3},
			{Row: []float64{2, 4}, Weight: 2},
			{Row: []float64{3, 6}, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wrules.TrainedRows() != 6 {
		t.Errorf("weighted TrainedRows = %d, want 6", wrules.TrainedRows())
	}

	// EM mining through the facade.
	holed := x.Clone()
	holed.Set(3, 1, ratiorules.Hole)
	em, err := wm.MineWithHoles(holed, ratiorules.EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !em.Converged {
		t.Error("EM did not converge on near-perfect data")
	}

	// Robust mining through the facade.
	rr, err := wm.MineRobust(x, ratiorules.RobustConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Rules == nil {
		t.Error("robust mining returned nil rules")
	}

	// Interpret + ResidualStd through the facade.
	readings := rules.Interpret(0)
	if len(readings) != rules.K() {
		t.Errorf("readings = %d, want %d", len(readings), rules.K())
	}
	if rules.ResidualStd(0) < 0 {
		t.Error("negative residual std")
	}

	// Projection through the facade.
	proj, err := rules.Project(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Rows() != 300 {
		t.Errorf("projection rows = %d", proj.Rows())
	}
}

func TestFacadeStreamCheckpoint(t *testing.T) {
	sm, err := ratiorules.NewStreamMiner(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := sm.Push([]float64{float64(i), 2 * float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := sm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ratiorules.LoadStreamMiner(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != 10 {
		t.Errorf("Count = %d, want 10", back.Count())
	}
	rules, err := back.Rules()
	if err != nil {
		t.Fatal(err)
	}
	rr1 := rules.Rule(0)
	if math.Abs(rr1[1]/rr1[0]-2) > 1e-9 {
		t.Errorf("restored slope = %v, want 2", rr1[1]/rr1[0])
	}
}
