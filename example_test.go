package ratiorules_test

import (
	"fmt"

	"ratiorules"
)

// Example mines Ratio Rules from a tiny exact-ratio sales table and uses
// them to guess a hidden value.
func Example() {
	// Customers spend on bread : milk in an exact 1 : 2 ratio.
	sales, _ := ratiorules.MatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
		{4, 8},
	})
	rules, _ := ratiorules.Mine(sales, ratiorules.AttrNames("bread", "milk"))

	rr1 := rules.Rule(0)
	fmt.Printf("bread : milk = %.3f : %.3f\n", rr1[0], rr1[1])

	// A customer spent $5 on bread; how much milk?
	full, _ := rules.FillRecord([]float64{5, ratiorules.Hole})
	fmt.Printf("milk ≈ $%.2f\n", full[1])
	// Output:
	// bread : milk = 0.447 : 0.894
	// milk ≈ $10.00
}

// ExampleGE1 scores a rule set with the paper's guessing error and shows
// the col-avgs competitor for reference.
func ExampleGE1() {
	train, _ := ratiorules.MatrixFromRows([][]float64{
		{1, 3}, {2, 6}, {3, 9}, {4, 12}, {5, 15},
	})
	test, _ := ratiorules.MatrixFromRows([][]float64{
		{2.5, 7.5}, {3.5, 10.5},
	})
	rules, _ := ratiorules.Mine(train)

	geRR, _ := ratiorules.GE1(rules, test)
	geCA, _ := ratiorules.GE1(ratiorules.NewColAvgs(rules.Means()), test)
	fmt.Printf("GE1: RR %.4f, col-avgs %.4f\n", geRR, geCA)
	// Output:
	// GE1: RR 0.0000, col-avgs 1.1180
}

// ExampleRules_WhatIf answers the paper's decision-support question:
// if demand for one product doubles, what happens to the others?
func ExampleRules_WhatIf() {
	// cereal : milk sold in a 1 : 1.5 ratio.
	history, _ := ratiorules.MatrixFromRows([][]float64{
		{2, 3}, {4, 6}, {6, 9}, {8, 12},
	})
	rules, _ := ratiorules.Mine(history, ratiorules.AttrNames("cereal", "milk"))

	base := rules.Means()
	out, _ := rules.WhatIf(ratiorules.Scenario{Given: map[int]float64{0: 2 * base[0]}})
	fmt.Printf("cereal doubles to %.0f -> stock %.0f of milk\n", out[0], out[1])
	// Output:
	// cereal doubles to 10 -> stock 15 of milk
}
