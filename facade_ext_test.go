package ratiorules_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ratiorules"
)

func TestStreamMinerThroughFacade(t *testing.T) {
	sm, err := ratiorules.NewStreamMiner(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := grocery(120, 21)
	for i := 0; i < 120; i++ {
		if err := sm.Push(x.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	rules, err := sm.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if rules.TrainedRows() != 120 {
		t.Errorf("TrainedRows = %d, want 120", rules.TrainedRows())
	}
	batch := mustMine(t, x)
	got, want := rules.Rule(0), batch.Rule(0)
	for i := range got {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("streamed rule %v != batch rule %v", got, want)
		}
	}
}

func TestMineShardedThroughFacade(t *testing.T) {
	x := grocery(200, 22)
	miner, err := ratiorules.NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	half1, half2 := ratiorules.NewMatrix(100, 3), ratiorules.NewMatrix(100, 3)
	for i := 0; i < 100; i++ {
		for j := 0; j < 3; j++ {
			half1.Set(i, j, x.At(i, j))
			half2.Set(i, j, x.At(100+i, j))
		}
	}
	rules, err := miner.MineSharded([]ratiorules.RowSource{
		ratiorules.NewMatrixSource(half1),
		ratiorules.NewMatrixSource(half2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rules.TrainedRows() != 200 {
		t.Errorf("TrainedRows = %d, want 200", rules.TrainedRows())
	}
}

func TestCategoricalThroughFacade(t *testing.T) {
	enc := ratiorules.NewCategoricalEncoder([]ratiorules.Field{
		{Name: "tier", Categorical: true},
		{Name: "spend"},
	})
	rng := rand.New(rand.NewSource(23))
	var records [][]string
	for i := 0; i < 200; i++ {
		if rng.Float64() < 0.5 {
			records = append(records, []string{"gold", fmt.Sprintf("%.2f", 80+rng.Float64()*40)})
		} else {
			records = append(records, []string{"basic", fmt.Sprintf("%.2f", 5+rng.Float64()*10)})
		}
	}
	ds, err := enc.EncodeAll("tiers", records)
	if err != nil {
		t.Fatal(err)
	}
	rules := mustMine(t, ds.X, ratiorules.WithAttrNames(ds.Attrs))
	// Hide the tier of a $100 spender; the rules should vote "gold".
	start, end, err := enc.FieldColumns(0)
	if err != nil {
		t.Fatal(err)
	}
	holes := make([]int, 0, end-start)
	for j := start; j < end; j++ {
		holes = append(holes, j)
	}
	filled, err := rules.FillRow([]float64{0, 0, 100}, holes)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := enc.Decode(filled)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != "gold" {
		t.Errorf("tier guess = %q, want gold", rec[0])
	}
}

func TestBandsThroughFacade(t *testing.T) {
	x := grocery(500, 30)
	rules := mustMine(t, x)
	out, err := rules.FillRecordWithBands([]float64{4, ratiorules.Hole, ratiorules.Hole})
	if err != nil {
		t.Fatal(err)
	}
	if out.Std[0] != 0 {
		t.Error("known cell must carry no band")
	}
	for _, j := range []int{1, 2} {
		if out.Std[j] <= 0 {
			t.Errorf("band[%d] = %v, want positive on noisy data", j, out.Std[j])
		}
	}
	// The band is the projection residual, a lower bound when most of the
	// record is hidden (see FillRecordWithBands); with 2 of 3 cells hidden
	// the 2-sigma band still covers a clear majority of errors.
	test := grocery(200, 31)
	covered, total := 0, 0
	for i := 0; i < 200; i++ {
		truth := test.Row(i)
		rec := []float64{truth[0], ratiorules.Hole, ratiorules.Hole}
		bf, err := rules.FillRecordWithBands(rec)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range []int{1, 2} {
			total++
			diff := bf.Filled[j] - truth[j]
			if diff < 0 {
				diff = -diff
			}
			if diff <= 2*bf.Std[j] {
				covered++
			}
		}
	}
	if frac := float64(covered) / float64(total); frac < 0.55 {
		t.Errorf("2-sigma coverage = %v, want >= 0.55", frac)
	}
}

func TestFillMatrixThroughFacade(t *testing.T) {
	x := grocery(100, 32)
	x.Set(5, 1, ratiorules.Hole)
	x.Set(9, 2, ratiorules.Hole)
	rules := mustMine(t, grocery(100, 33))
	n, err := ratiorules.FillMatrix(rules, x)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("filled %d cells, want 2", n)
	}
	if ratiorules.IsHole(x.At(5, 1)) || ratiorules.IsHole(x.At(9, 2)) {
		t.Error("holes remain after FillMatrix")
	}
}
