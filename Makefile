GO ?= go

.PHONY: all build vet test race verify bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the race detector over the whole module; the obs registry and
# the server model registry additionally have dedicated concurrent-scrape
# stress tests (see internal/obs/race_test.go, internal/server).
race:
	$(GO) test -race ./...

# verify is the gate for every change: vet, a full build, then the race
# detector across all packages.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/rrbench -experiment all

clean:
	$(GO) clean ./...
