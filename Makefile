GO ?= go
FUZZTIME ?= 10s
# Pinned staticcheck build for `make lint`; used via `go run` only when
# no staticcheck binary is on PATH (needs network for the first run).
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build vet test race lint verify verify-api verify-store verify-trace verify-online verify-alert verify-cluster verify-replica verify-fleet verify-admission fuzz bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the race detector over the whole module; the obs registry and
# the server model registry additionally have dedicated concurrent-scrape
# stress tests (see internal/obs/race_test.go, internal/server).
race:
	$(GO) test -race ./...

# lint runs staticcheck: the PATH binary when present, else the pinned
# version via `go run` (which downloads it — CI does this; offline
# machines without the binary get a skip, not a failure, which is why
# lint is a CI step and not part of the offline `make verify` gate).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "lint: staticcheck unavailable (offline?); skipping"; \
	fi

# verify-store hammers the durable model store: race detector plus
# -count=3 so every run re-exercises open/recover/compact on fresh
# temp dirs (WAL truncation tests are offset-exhaustive and cheap).
verify-store:
	$(GO) test -race -count=3 ./internal/store

# verify-api checks the v1 HTTP contract (docs/api.md): the route-walking
# contract test plus vet and the race detector over the server and the
# core batch engine it fronts.
verify-api:
	$(GO) vet ./internal/server ./internal/core
	$(GO) test -run 'TestV1Contract' -count=1 ./internal/server
	$(GO) test -race ./internal/server ./internal/core

# verify-trace checks the request-tracing layer (docs/observability.md):
# vet plus the race detector over the span tracer, the obs wiring and
# the server middleware/debug endpoints that publish the traces.
verify-trace:
	$(GO) vet ./internal/obs/... ./internal/server
	$(GO) test -race ./internal/obs/... ./internal/server

# verify-online checks the live-ingest subsystem (docs/online.md): the
# manager/stream/gate/checkpoint suite under the race detector twice
# (republish scheduling is timing-sensitive), plus the HTTP ingest
# contract and the rrserve end-to-end lifecycle test.
verify-online:
	$(GO) vet ./internal/online ./internal/server ./cmd/rrserve
	$(GO) test -race -count=2 ./internal/online/...
	$(GO) test -run 'TestIngest|TestStreamLifecycle|TestV1Contract' -count=1 ./internal/server
	$(GO) test -race -run 'TestOnlineIngestEndToEnd' -count=1 ./cmd/rrserve

# verify-alert checks the model-quality monitor (docs/observability.md,
# "Model-quality alerts"): the alert engine's state machines, the GE
# monitor/auto-rollback path under the race detector, the health/alert
# HTTP surface, and the rrserve drift-to-rollback end-to-end pair.
verify-alert:
	$(GO) vet ./internal/obs/alert ./internal/online ./cmd/rrserve
	$(GO) test -race -count=2 ./internal/obs/alert
	$(GO) test -race -run 'TestGateDecisions|TestEvalGE|TestGEHistory|TestRegressionAlert|TestAutoRollback|TestCheckpointResumeGEHistory|TestGEEvalTick' -count=1 ./internal/online
	$(GO) test -run 'TestV1Contract|TestModelHealth|TestReadyz|TestDebugAlerts' -count=1 ./internal/server
	$(GO) test -race -run 'TestDrift' -count=1 ./cmd/rrserve

# verify-cluster checks the sharded ingest/mining cluster
# (docs/cluster.md): the wire framing, shard-merge exactness, failover,
# and local-transport suites under the race detector twice (fan-out
# teardown ordering is timing-sensitive), the coordinator-mode HTTP
# contract, and the multi-node rrserve end-to-end test.
verify-cluster:
	$(GO) vet ./internal/cluster ./internal/server ./cmd/rrserve
	$(GO) test -race -count=2 ./internal/cluster
	$(GO) test -run 'TestCluster' -count=1 ./internal/server
	$(GO) test -race -run 'TestClusterEndToEnd' -count=1 ./cmd/rrserve

# verify-replica checks WAL-shipped follower replication
# (docs/replication.md): the wire framing, follower loop and store
# replication surface under the race detector twice (reconnect/stall
# paths are timing-sensitive), the role-gated HTTP contract, and the
# rrserve leader/follower end-to-end test (kill/restart both sides,
# byte-identical reads, checkpointed resume with no duplicate replay).
verify-replica:
	$(GO) vet ./internal/replica ./internal/store ./internal/server ./cmd/rrserve
	$(GO) test -race -count=2 ./internal/replica
	$(GO) test -race -run 'TestEventsSince|TestChangedWakesTailers|TestApplyEvent|TestRestoreSnapshot' -count=1 ./internal/store
	$(GO) test -run 'TestV1Contract|TestFollower|TestReplicateRouteOnLeader' -count=1 ./internal/server
	$(GO) test -race -run 'TestFollower' -count=1 ./cmd/rrserve

# verify-fleet checks the fleet-wide observability layer
# (docs/observability.md, "Fleet observability"): the federated fleet
# collector and the continuous-profiling ring under the race detector
# twice (scrape fan-out and ring eviction are concurrency-sensitive),
# plus the cross-node trace propagation suites (coordinator→worker over
# the RRC2 wire, leader→follower over replication stamps) and the
# fleet/profile HTTP surface.
verify-fleet:
	$(GO) vet ./internal/obs/fleet ./internal/obs/profile ./internal/cluster ./internal/replica ./internal/server
	$(GO) test -race -count=2 ./internal/obs/fleet ./internal/obs/profile
	$(GO) test -race -run 'TestCrossNodeTracePropagation|TestUntracedIngestOpensNoWorkerTrace|TestChunkTrace' -count=1 ./internal/cluster
	$(GO) test -race -run 'TestFollowerContinuesLeaderTrace|TestUntracedCommitAppliesQuietly' -count=1 ./internal/replica
	$(GO) test -run 'TestV1Contract|TestFleetRoutes|TestProfileRoutes|TestMetricsServesBuildInfo' -count=1 ./internal/server

# verify-admission checks admission control & multi-tenancy
# (docs/api.md "Authentication and multi-tenancy", docs/runbook.md):
# the tenant registry / bucket / quota / shed suites under the race
# detector twice (bounded-wait and reload paths are timing-sensitive),
# the auth/rate-limit/isolation/shed HTTP contract, and the rrserve
# end-to-end pair (tenants-file boot + SIGHUP rotation, flags-only
# anonymous admission).
verify-admission:
	$(GO) vet ./internal/admission ./internal/server ./cmd/rrserve
	$(GO) test -race -count=2 ./internal/admission
	$(GO) test -run 'TestV1Contract' -count=1 ./internal/server
	$(GO) test -race -run 'TestAdmission' -count=1 ./cmd/rrserve

# verify is the gate for every change: vet, a full build, the race
# detector across all packages, then the store persistence gauntlet,
# the HTTP API contract, the tracing layer, the live-ingest loop, the
# model-quality alert path, the sharded cluster, follower replication,
# the fleet observability layer and admission control. (Lint is a
# separate CI step — it may need the network to fetch staticcheck.)
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) verify-store
	$(MAKE) verify-api
	$(MAKE) verify-trace
	$(MAKE) verify-online
	$(MAKE) verify-alert
	$(MAKE) verify-cluster
	$(MAKE) verify-replica
	$(MAKE) verify-fleet
	$(MAKE) verify-admission

# fuzz runs each core fuzz target for FUZZTIME (default 10s). Go allows
# one -fuzz pattern per invocation, hence the separate runs.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzFillRow$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzWhatIf$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzWALDecode$$' -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run='^$$' -fuzz='^FuzzLoadStreamMiner$$' -fuzztime=$(FUZZTIME) ./internal/core

bench:
	$(GO) run ./cmd/rrbench -experiment all

clean:
	$(GO) clean ./...
