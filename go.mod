module ratiorules

go 1.22
