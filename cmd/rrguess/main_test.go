package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratiorules"
)

func TestParseRecord(t *testing.T) {
	row, holes, err := parseRecord("10, ?, 3.5,?")
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 4 {
		t.Fatalf("row = %v", row)
	}
	if row[0] != 10 || row[2] != 3.5 {
		t.Errorf("values = %v", row)
	}
	if !ratiorules.IsHole(row[1]) || !ratiorules.IsHole(row[3]) {
		t.Error("holes not marked")
	}
	if len(holes) != 2 || holes[0] != 1 || holes[1] != 3 {
		t.Errorf("holes = %v", holes)
	}
}

func TestParseRecordErrors(t *testing.T) {
	if _, _, err := parseRecord("1,x,3"); err == nil {
		t.Error("non-numeric field must fail")
	}
}

func TestRunMissingFlags(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("missing flags must fail")
	}
}

func TestGuessEndToEnd(t *testing.T) {
	// Mine rules from a 1:2 ratio table and save them.
	rows := make([][]float64, 40)
	for i := range rows {
		v := 1 + float64(i)*0.25
		rows[i] = []float64{v, 2 * v}
	}
	x, err := ratiorules.MatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	miner, err := ratiorules.NewMiner(ratiorules.WithAttrNames([]string{"bread", "milk"}))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rules.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rules.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf strings.Builder
	if err := run([]string{"-rules", path, "-record", "4,?"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "milk") || !strings.Contains(out, "estimated") {
		t.Errorf("output missing estimate markers:\n%s", out)
	}
	if !strings.Contains(out, "8.0") {
		t.Errorf("milk estimate should be ≈ 8:\n%s", out)
	}
}

func TestGuessBadInputs(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-rules", "/nonexistent.json", "-record", "1,?"}, &buf); err == nil {
		t.Error("missing rules file must fail")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-rules", path, "-record", "1,?"}, &buf); err == nil {
		t.Error("corrupt rules file must fail")
	}
}
