// Command rrguess fills the holes of a partial record using previously
// mined Ratio Rules (rrmine -out rules.json). Holes are written as "?".
//
// Usage:
//
//	rrguess -rules rules.json -record "10,?,3.5,?"
//
// The filled record is printed one attribute per line, with estimated
// cells marked.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ratiorules"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrguess:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrguess", flag.ContinueOnError)
	var (
		rulesPath = fs.String("rules", "", "rules JSON produced by rrmine -out; required")
		record    = fs.String("record", "", `comma-separated record with "?" for unknown cells; required`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rulesPath == "" || *record == "" {
		fs.Usage()
		return fmt.Errorf("missing -rules or -record")
	}
	f, err := os.Open(*rulesPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rules, err := ratiorules.LoadRules(f)
	if err != nil {
		return err
	}
	row, holes, err := parseRecord(*record)
	if err != nil {
		return err
	}
	filled, err := rules.FillRow(row, holes)
	if err != nil {
		return err
	}
	isHole := make(map[int]bool, len(holes))
	for _, j := range holes {
		isHole[j] = true
	}
	for j, v := range filled {
		mark := ""
		if isHole[j] {
			mark = "  (estimated)"
		}
		fmt.Fprintf(out, "%-22s %12.4f%s\n", rules.AttrName(j), v, mark)
	}
	return nil
}

// parseRecord splits "10,?,3.5" into values and hole indices.
func parseRecord(s string) ([]float64, []int, error) {
	fields := strings.Split(s, ",")
	row := make([]float64, len(fields))
	var holes []int
	for j, f := range fields {
		f = strings.TrimSpace(f)
		if f == "?" {
			row[j] = ratiorules.Hole
			holes = append(holes, j)
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("field %d (%q): %w", j+1, f, err)
		}
		row[j] = v
	}
	return row, holes, nil
}
