// Command questgen writes a Quest-style synthetic market-basket matrix as
// CSV, the input of the paper's scale-up experiment (Fig. 8).
//
// Usage:
//
//	questgen -rows 100000 -cols 100 -out basket.csv
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"ratiorules/internal/quest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "questgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("questgen", flag.ContinueOnError)
	var (
		rows = fs.Int("rows", 100000, "number of customer rows N")
		cols = fs.Int("cols", 100, "number of product columns M")
		seed = fs.Int64("seed", 98, "generator seed")
		out  = fs.String("out", "", "output CSV path (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := quest.DefaultConfig(*rows)
	cfg.Cols = *cols
	cfg.Seed = *seed
	if cfg.PatternLen > *cols {
		cfg.PatternLen = *cols
	}
	src, err := quest.NewSource(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	// Header.
	for j := 0; j < *cols; j++ {
		if j > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "product%d", j)
	}
	bw.WriteByte('\n')
	buf := make([]byte, 0, 32)
	for {
		row, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		for j, v := range row {
			if j > 0 {
				bw.WriteByte(',')
			}
			buf = strconv.AppendFloat(buf[:0], v, 'g', 6, 64)
			bw.Write(buf)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
