package main

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeDamaged builds a y = 2x CSV with some "?" cells and a corrupt row.
func writeDamaged(t *testing.T, corrupt bool) (path string, truth map[[2]int]float64) {
	t.Helper()
	truth = map[[2]int]float64{}
	var b strings.Builder
	b.WriteString("x,y\n")
	for i := 0; i < 60; i++ {
		v := 1 + float64(i)*0.2
		xs := strconv.FormatFloat(v, 'g', -1, 64)
		ys := strconv.FormatFloat(2*v, 'g', -1, 64)
		switch {
		case i%10 == 3:
			truth[[2]int{i, 1}] = 2 * v
			ys = "?"
		case i%10 == 7:
			truth[[2]int{i, 0}] = v
			xs = "?"
		case corrupt && i == 50:
			ys = "1000" // corrupted record
		}
		b.WriteString(xs + "," + ys + "\n")
	}
	path = filepath.Join(t.TempDir(), "damaged.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, truth
}

func parseOut(t *testing.T, out string) [][]float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var rows [][]float64
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		row := make([]float64, len(parts))
		for j, p := range parts {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				t.Fatalf("non-numeric output %q: %v", p, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	return rows
}

func TestCleanEndToEnd(t *testing.T) {
	path, truth := writeDamaged(t, false)
	var buf strings.Builder
	if err := run([]string{"-in", path}, &buf); err != nil {
		t.Fatal(err)
	}
	rows := parseOut(t, buf.String())
	if len(rows) != 60 {
		t.Fatalf("output rows = %d, want 60", len(rows))
	}
	for cell, want := range truth {
		got := rows[cell[0]][cell[1]]
		if math.Abs(got-want) > 0.05*(1+math.Abs(want)) {
			t.Errorf("cell %v repaired to %v, want ≈ %v", cell, got, want)
		}
	}
}

func TestCleanRobustSurvivesCorruption(t *testing.T) {
	path, truth := writeDamaged(t, true)
	var buf strings.Builder
	if err := run([]string{"-in", path, "-robust"}, &buf); err != nil {
		t.Fatal(err)
	}
	rows := parseOut(t, buf.String())
	for cell, want := range truth {
		got := rows[cell[0]][cell[1]]
		if math.Abs(got-want) > 0.1*(1+math.Abs(want)) {
			t.Errorf("cell %v repaired to %v, want ≈ %v (robust)", cell, got, want)
		}
	}
}

func TestCleanToFile(t *testing.T) {
	path, _ := writeDamaged(t, false)
	outPath := filepath.Join(t.TempDir(), "repaired.csv")
	var buf strings.Builder
	if err := run([]string{"-in", path, "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "?") {
		t.Error("output still contains holes")
	}
}

func TestCleanErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("missing -in must fail")
	}
	if err := run([]string{"-in", "/nonexistent.csv"}, &buf); err == nil {
		t.Error("missing file must fail")
	}
	// Not enough complete rows.
	path := filepath.Join(t.TempDir(), "tiny.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,?\n?,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}, &buf); err == nil {
		t.Error("all-holes input must fail")
	}
	// Garbage cell.
	path2 := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path2, []byte("a,b\n1,zzz\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path2}, &buf); err == nil {
		t.Error("garbage cell must fail")
	}
}

func TestCleanEMMode(t *testing.T) {
	path, truth := writeDamaged(t, false)
	var buf strings.Builder
	if err := run([]string{"-in", path, "-em"}, &buf); err != nil {
		t.Fatal(err)
	}
	rows := parseOut(t, buf.String())
	for cell, want := range truth {
		got := rows[cell[0]][cell[1]]
		if math.Abs(got-want) > 0.05*(1+math.Abs(want)) {
			t.Errorf("EM cell %v repaired to %v, want ≈ %v", cell, got, want)
		}
	}
}
