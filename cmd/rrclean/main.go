// Command rrclean repairs a CSV data matrix: cells written as "?" are
// treated as lost and reconstructed with Ratio Rules mined from the
// complete rows (optionally with robust trimming so corrupted records do
// not distort the rules). The repaired CSV is written to stdout or -out.
//
// Usage:
//
//	rrclean -in damaged.csv -out repaired.csv [-robust] [-energy 0.85]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"ratiorules"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrclean:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rrclean", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "damaged CSV (header + rows, \"?\" for lost cells); required")
		out    = fs.String("out", "", "output path (default: stdout)")
		robust = fs.Bool("robust", false, "trim row outliers before fitting the rules")
		em     = fs.Bool("em", false, "mine from ALL rows via iterative fill/re-mine (EM) instead of complete rows only")
		energy = fs.Float64("energy", ratiorules.DefaultEnergy, "Eq. 1 variance cutoff")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}

	header, rows, holes, err := readDamaged(*in)
	if err != nil {
		return err
	}
	var rules *ratiorules.Rules
	if *em {
		rules, err = mineEM(header, rows, *energy)
	} else {
		rules, err = mineComplete(header, rows, holes, *robust, *energy)
	}
	if err != nil {
		return err
	}
	repaired, estimates := 0, 0
	for i, rowHoles := range holes {
		if len(rowHoles) == 0 {
			continue
		}
		fixed, err := rules.FillRow(rows[i], rowHoles)
		if err != nil {
			return fmt.Errorf("repairing row %d: %w", i+2, err) // +2: header + 1-based
		}
		rows[i] = fixed
		repaired++
		estimates += len(rowHoles)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := writeCSV(w, header, rows); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rrclean: repaired %d rows (%d cells) with k=%d rules\n",
		repaired, estimates, rules.K())
	return nil
}

// readDamaged parses the CSV, mapping "?" to the hole marker.
func readDamaged(path string) (header []string, rows [][]float64, holes [][]int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	header, err = cr.Read()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reading header: %w", err)
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, nil, nil, fmt.Errorf("line %d: %d fields, want %d", line, len(rec), len(header))
		}
		row := make([]float64, len(rec))
		var rowHoles []int
		for j, s := range rec {
			if s == "?" {
				row[j] = ratiorules.Hole
				rowHoles = append(rowHoles, j)
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("line %d column %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
		holes = append(holes, rowHoles)
	}
	return header, rows, holes, nil
}

// mineEM fits rules on every row, holes included, via MineWithHoles.
func mineEM(header []string, rows [][]float64, energy float64) (*ratiorules.Rules, error) {
	x, err := ratiorules.MatrixFromRows(rows)
	if err != nil {
		return nil, err
	}
	miner, err := ratiorules.NewMiner(
		ratiorules.WithAttrNames(header),
		ratiorules.WithEnergy(energy),
	)
	if err != nil {
		return nil, err
	}
	res, err := miner.MineWithHoles(x, ratiorules.EMConfig{})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "rrclean: EM mining converged=%v after %d rounds over all %d rows\n",
		res.Converged, res.Rounds, len(rows))
	return res.Rules, nil
}

// mineComplete fits rules on the rows without holes.
func mineComplete(header []string, rows [][]float64, holes [][]int, robust bool, energy float64) (*ratiorules.Rules, error) {
	var complete [][]float64
	for i, rowHoles := range holes {
		if len(rowHoles) == 0 {
			complete = append(complete, rows[i])
		}
	}
	if len(complete) < 2 {
		return nil, fmt.Errorf("only %d complete rows; need at least 2 to mine rules", len(complete))
	}
	x, err := ratiorules.MatrixFromRows(complete)
	if err != nil {
		return nil, err
	}
	miner, err := ratiorules.NewMiner(
		ratiorules.WithAttrNames(header),
		ratiorules.WithEnergy(energy),
	)
	if err != nil {
		return nil, err
	}
	if robust {
		res, err := miner.MineRobust(x, ratiorules.RobustConfig{})
		if err != nil {
			return nil, err
		}
		if len(res.TrimmedRows) > 0 {
			fmt.Fprintf(os.Stderr, "rrclean: robust fit trimmed %d suspicious rows\n", len(res.TrimmedRows))
		}
		return res.Rules, nil
	}
	return miner.MineMatrix(x)
}

func writeCSV(w io.Writer, header []string, rows [][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, row := range rows {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
