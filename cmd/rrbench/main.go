// Command rrbench regenerates the tables and figures of the paper's
// evaluation (Korn et al., VLDB 1998) on the synthetic dataset stand-ins.
//
// Usage:
//
//	rrbench -experiment all
//	rrbench -experiment fig6 -dataset baseball
//	rrbench -experiment fig8 -sizes 10000,50000,100000
//	rrbench -experiment table2 | fig7 | fig9 | fig11 | fig12 | cutoff
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ratiorules/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rrbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "fig6, fig7, fig8, fig9, fig11, fig12, sec63, table2, cutoff, robust, bands, learncurve or all")
		ds         = fs.String("dataset", "nba", "dataset for fig6/cutoff: nba, baseball or abalone")
		sizes      = fs.String("sizes", "", "comma-separated row counts for fig8 (default: the paper's sweep)")
		datDir     = fs.String("datdir", "", "also write the paper's gnuplot data files (nba.d2, scaleup.dat, ...) into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runOne := func(name string) error {
		switch name {
		case "fig6":
			res, err := experiments.RunFig6(*ds)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "fig7":
			res, err := experiments.RunFig7()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "fig8":
			ns, err := parseSizes(*sizes)
			if err != nil {
				return err
			}
			res, err := experiments.RunFig8(ns)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "fig9":
			for _, name := range []string{"baseball", "abalone"} {
				res, err := experiments.RunScatter(name, 1, 2)
				if err != nil {
					return err
				}
				fmt.Fprintln(w, res)
			}
		case "fig11":
			for _, axes := range [][2]int{{1, 2}, {2, 3}} {
				res, err := experiments.RunScatter("nba", axes[0], axes[1])
				if err != nil {
					return err
				}
				fmt.Fprintln(w, res)
			}
		case "fig12":
			res, err := experiments.RunFig12()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "sec63":
			res, err := experiments.RunSec63()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "table2":
			res, err := experiments.RunTable2()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "learncurve":
			res, err := experiments.RunLearnCurve(*ds)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "bands":
			res, err := experiments.RunBands(*ds)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "robust":
			res, err := experiments.RunRobust(0)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "cutoff":
			res, err := experiments.RunCutoff(*ds)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *datDir != "" {
		files, err := experiments.WriteAllDat(*datDir, *experiment == "all")
		if err != nil {
			return fmt.Errorf("writing dat files: %w", err)
		}
		fmt.Fprintf(w, "wrote %d data files to %s: %v\n", len(files), *datDir, files)
	}

	if *experiment == "all" {
		for _, name := range []string{"table2", "fig7", "fig6", "fig11", "fig9", "fig12", "sec63", "cutoff", "robust", "bands", "learncurve", "fig8"} {
			fmt.Fprintf(w, "==================== %s ====================\n", name)
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(*experiment)
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}
