// Command rrbench regenerates the tables and figures of the paper's
// evaluation (Korn et al., VLDB 1998) on the synthetic dataset stand-ins.
//
// Usage:
//
//	rrbench -experiment all
//	rrbench -experiment fig6 -dataset baseball
//	rrbench -experiment fig8 -sizes 10000,50000,100000
//	rrbench -experiment table2 | fig7 | fig9 | fig11 | fig12 | cutoff
//	rrbench -experiment batch -batch-rows 10000 -batch-patterns 8
//	rrbench -experiment fig8 -json > BENCH_fig8.json
//	rrbench -experiment all -out BENCH_PR4.json
//
// With -json the human-readable tables are suppressed and a single
// machine-readable summary is printed instead: per-experiment wall
// times plus the miner's phase timings, throughput, op counters and
// fill-cache hit rate snapshot from the obs registry — the input for
// BENCH_*.json trajectory tracking. -out writes the same summary to a
// file while keeping the tables on stdout, so one run produces both.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ratiorules/internal/experiments"
	"ratiorules/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rrbench", flag.ContinueOnError)
	var (
		experiment    = fs.String("experiment", "all", "fig6, fig7, fig8, fig9, fig11, fig12, sec63, table2, cutoff, robust, bands, learncurve, batch, online, drift, cluster, replica, profile, admission or all")
		batchRows     = fs.Int("batch-rows", 10000, "rows for the batch experiment")
		batchPatterns = fs.Int("batch-patterns", 8, "distinct hole patterns for the batch experiment")
		batchWorkers  = fs.Int("batch-workers", 0, "worker pool width for the batch experiment (<= 0 = one per CPU)")
		onlineRows    = fs.Int("online-rows", 100000, "rows for the online ingest experiment")
		onlineWidth   = fs.Int("online-width", 32, "columns for the online ingest experiment")
		profileRows   = fs.Int("profile-rows", 400000, "rows per pass for the profiling-overhead experiment")
		profileWidth  = fs.Int("profile-width", 32, "columns for the profiling-overhead experiment")
		driftRows     = fs.Int("drift-rows", 20000, "row budget for the drift detection experiment")
		driftWidth    = fs.Int("drift-width", 16, "columns for the drift detection experiment")
		clusterRows   = fs.Int("cluster-rows", 200000, "rows for the cluster experiment")
		clusterWidth  = fs.Int("cluster-width", 32, "columns for the cluster experiment")
		clusterNodes  = fs.Int("cluster-nodes", 4, "in-process worker nodes for the cluster experiment")
		replicaEvents = fs.Int("replica-events", 2000, "committed models for the replica experiment")
		replicaWidth  = fs.Int("replica-width", 32, "columns per model for the replica experiment")
		admRequests   = fs.Int("admission-requests", 2000, "sequential probe requests per admission experiment phase")
		admFlood      = fs.Int("admission-flood", 12, "concurrent flooding goroutines for the admission experiment")
		ds            = fs.String("dataset", "nba", "dataset for fig6/cutoff: nba, baseball or abalone")
		sizes         = fs.String("sizes", "", "comma-separated row counts for fig8 (default: the paper's sweep)")
		datDir        = fs.String("datdir", "", "also write the paper's gnuplot data files (nba.d2, scaleup.dat, ...) into this directory")
		jsonOut       = fs.Bool("json", false, "suppress tables and print a machine-readable timing/throughput summary")
		outFile       = fs.String("out", "", "also write the JSON summary to this file (tables stay on stdout)")
		verbose       = fs.Bool("v", false, "debug logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obs.Setup(*verbose)

	// In -json mode the tables are discarded so stdout is pure JSON.
	jsonDst := w
	if *jsonOut {
		w = io.Discard
	}
	var timings []benchExperiment
	var driftRes *experiments.DriftResult
	var clusterRes *experiments.ClusterResult
	var replicaRes *experiments.ReplicaResult
	var profileRes *experiments.ProfileResult
	var admissionRes *experiments.AdmissionResult

	runOne := func(name string) error {
		switch name {
		case "fig6":
			res, err := experiments.RunFig6(*ds)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "fig7":
			res, err := experiments.RunFig7()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "fig8":
			ns, err := parseSizes(*sizes)
			if err != nil {
				return err
			}
			res, err := experiments.RunFig8(ns)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "fig9":
			for _, name := range []string{"baseball", "abalone"} {
				res, err := experiments.RunScatter(name, 1, 2)
				if err != nil {
					return err
				}
				fmt.Fprintln(w, res)
			}
		case "fig11":
			for _, axes := range [][2]int{{1, 2}, {2, 3}} {
				res, err := experiments.RunScatter("nba", axes[0], axes[1])
				if err != nil {
					return err
				}
				fmt.Fprintln(w, res)
			}
		case "fig12":
			res, err := experiments.RunFig12()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "sec63":
			res, err := experiments.RunSec63()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "table2":
			res, err := experiments.RunTable2()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "learncurve":
			res, err := experiments.RunLearnCurve(*ds)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "bands":
			res, err := experiments.RunBands(*ds)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "robust":
			res, err := experiments.RunRobust(0)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "cutoff":
			res, err := experiments.RunCutoff(*ds)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "batch":
			res, err := experiments.RunBatch(*batchRows, *batchPatterns, *batchWorkers)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "online":
			res, err := experiments.RunOnline(*onlineRows, *onlineWidth)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res)
		case "drift":
			res, err := experiments.RunDrift(*driftRows, *driftWidth)
			if err != nil {
				return err
			}
			driftRes = res
			fmt.Fprintln(w, res)
		case "cluster":
			res, err := experiments.RunCluster(*clusterRows, *clusterWidth, *clusterNodes)
			if err != nil {
				return err
			}
			clusterRes = res
			fmt.Fprintln(w, res)
		case "replica":
			res, err := experiments.RunReplica(*replicaEvents, *replicaWidth)
			if err != nil {
				return err
			}
			replicaRes = res
			fmt.Fprintln(w, res)
		case "profile":
			res, err := experiments.RunProfileOverhead(*profileRows, *profileWidth)
			if err != nil {
				return err
			}
			profileRes = res
			fmt.Fprintln(w, res)
		case "admission":
			res, err := experiments.RunAdmission(*admRequests, *admFlood)
			if err != nil {
				return err
			}
			admissionRes = res
			fmt.Fprintln(w, res)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *datDir != "" {
		files, err := experiments.WriteAllDat(*datDir, *experiment == "all")
		if err != nil {
			return fmt.Errorf("writing dat files: %w", err)
		}
		fmt.Fprintf(w, "wrote %d data files to %s: %v\n", len(files), *datDir, files)
	}

	timedRun := func(name string) error {
		start := time.Now()
		err := runOne(name)
		timings = append(timings, benchExperiment{Name: name, Seconds: time.Since(start).Seconds()})
		return err
	}

	if *experiment == "all" {
		for _, name := range []string{"table2", "fig7", "fig6", "fig11", "fig9", "fig12", "sec63", "cutoff", "robust", "bands", "learncurve", "batch", "online", "drift", "cluster", "replica", "profile", "admission", "fig8"} {
			fmt.Fprintf(w, "==================== %s ====================\n", name)
			if err := timedRun(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	} else if err := timedRun(*experiment); err != nil {
		return err
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return fmt.Errorf("creating -out file: %w", err)
		}
		if err := writeJSONSummary(f, timings, driftRes, clusterRes, replicaRes, profileRes, admissionRes); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", *outFile, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote summary to %s\n", *outFile)
	}
	if *jsonOut {
		return writeJSONSummary(jsonDst, timings, driftRes, clusterRes, replicaRes, profileRes, admissionRes)
	}
	return nil
}

// benchExperiment is one experiment's wall-clock cost.
type benchExperiment struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// phaseStat aggregates one histogram: observation count and total
// seconds.
type phaseStat struct {
	Count   float64 `json:"count"`
	Seconds float64 `json:"seconds"`
}

// benchSummary is the -json document. Miner figures come from the obs
// registry the instrumented core records into, so they cover exactly
// the mining work this process did.
type benchSummary struct {
	Experiments  []benchExperiment `json:"experiments"`
	TotalSeconds float64           `json:"total_seconds"`
	Miner        minerSummary      `json:"miner"`
	Online       onlineSummary     `json:"online"`
	// Drift carries the drift experiment's detection/recovery figures
	// when it ran (nil otherwise).
	Drift *experiments.DriftResult `json:"drift,omitempty"`
	// Cluster carries the sharded-cluster experiment's throughput,
	// exactness and gate before/after figures when it ran.
	Cluster *experiments.ClusterResult `json:"cluster,omitempty"`
	// Replica carries the WAL-shipped replication experiment's catch-up
	// throughput and steady-state propagation latency when it ran.
	Replica *experiments.ReplicaResult `json:"replica,omitempty"`
	// Profile carries the continuous-profiling overhead comparison
	// (ingest throughput ring-off vs ring-on) when it ran.
	Profile *experiments.ProfileResult `json:"profile,omitempty"`
	// Admission carries the traffic-protection figures (middleware
	// overhead, tenant isolation under flood, shed turnaround) when the
	// admission experiment ran.
	Admission *experiments.AdmissionResult `json:"admission,omitempty"`
	// ClusterMetrics snapshots the coordinator/worker rr_cluster_*
	// counters accumulated by the run.
	ClusterMetrics clusterSummary `json:"cluster_metrics"`
	// Alerts snapshots the rr_alert_* and monitor counters.
	Alerts alertSummary `json:"alerts"`
}

// clusterSummary is the rr_cluster_* registry footprint.
type clusterSummary struct {
	Rows        map[string]float64 `json:"rows"`   // ok | rejected
	Chunks      map[string]float64 `json:"chunks"` // ok | resharded | failed
	Merges      map[string]float64 `json:"merges"` // ok | degraded | error
	Pulls       map[string]float64 `json:"pulls"`  // ok | empty | error
	WorkerRows  float64            `json:"worker_rows"`
	Reshardings float64            `json:"reshardings"`
}

// alertSummary is the alert engine's and quality monitor's registry
// footprint for the run.
type alertSummary struct {
	Evals         float64            `json:"evals"`
	Transitions   map[string]float64 `json:"transitions"`
	GEEvals       map[string]float64 `json:"ge_evals"`
	AutoRollbacks float64            `json:"auto_rollbacks"`
}

// onlineSummary snapshots the live-ingest subsystem's counters and the
// republish / GE-gate histograms (rr_online_*), when the online
// experiment — or anything else pushing rows — ran in this process.
type onlineSummary struct {
	RowsIngested map[string]float64 `json:"rows_ingested"`
	Republishes  map[string]float64 `json:"republishes"`
	Promotions   float64            `json:"promotions"`
	Rejections   float64            `json:"rejections"`
	Republish    phaseStat          `json:"republish"`
	GEGate       phaseStat          `json:"ge_gate"`
	// GateFrac is GE-gate seconds over republish seconds: the share of
	// each re-mine spent deciding whether to promote it.
	GateFrac float64 `json:"gate_frac"`
}

type minerSummary struct {
	Phases         map[string]phaseStat `json:"phases"`
	ShardScans     phaseStat            `json:"shard_scans"`
	RowsScanned    float64              `json:"rows_scanned"`
	CellsScanned   float64              `json:"cells_scanned"`
	RowsPerSecond  float64              `json:"rows_per_second"`
	CellsPerSecond float64              `json:"cells_per_second"`
	Mines          map[string]float64   `json:"mines"`
	Ops            map[string]float64   `json:"ops"`
	FillCache      map[string]float64   `json:"fill_cache"`
	// CacheHitRate is hits/(hits+misses) of the fill-plan cache over
	// the whole run; 0 when the cache was never consulted.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// writeJSONSummary snapshots the obs registry into the -json document.
func writeJSONSummary(w io.Writer, timings []benchExperiment, drift *experiments.DriftResult,
	clusterRes *experiments.ClusterResult, replicaRes *experiments.ReplicaResult,
	profileRes *experiments.ProfileResult, admissionRes *experiments.AdmissionResult) error {
	sum := benchSummary{
		Experiments: timings,
		Miner: minerSummary{
			Phases:    make(map[string]phaseStat),
			Mines:     make(map[string]float64),
			Ops:       make(map[string]float64),
			FillCache: make(map[string]float64),
		},
		Online: onlineSummary{
			RowsIngested: make(map[string]float64),
			Republishes:  make(map[string]float64),
		},
		Drift:     drift,
		Cluster:   clusterRes,
		Replica:   replicaRes,
		Profile:   profileRes,
		Admission: admissionRes,
		ClusterMetrics: clusterSummary{
			Rows:   make(map[string]float64),
			Chunks: make(map[string]float64),
			Merges: make(map[string]float64),
			Pulls:  make(map[string]float64),
		},
		Alerts: alertSummary{
			Transitions: make(map[string]float64),
			GEEvals:     make(map[string]float64),
		},
	}
	for _, e := range timings {
		sum.TotalSeconds += e.Seconds
	}
	for _, s := range obs.Default().Gather() {
		switch s.Name {
		case "rr_miner_phase_seconds_sum":
			p := sum.Miner.Phases[s.Labels["phase"]]
			p.Seconds = s.Value
			sum.Miner.Phases[s.Labels["phase"]] = p
		case "rr_miner_phase_seconds_count":
			p := sum.Miner.Phases[s.Labels["phase"]]
			p.Count = s.Value
			sum.Miner.Phases[s.Labels["phase"]] = p
		case "rr_miner_shard_seconds_sum":
			sum.Miner.ShardScans.Seconds = s.Value
		case "rr_miner_shard_seconds_count":
			sum.Miner.ShardScans.Count = s.Value
		case "rr_miner_rows_total":
			sum.Miner.RowsScanned = s.Value
		case "rr_miner_cells_total":
			sum.Miner.CellsScanned = s.Value
		case "rr_miner_rows_per_second":
			sum.Miner.RowsPerSecond = s.Value
		case "rr_miner_cells_per_second":
			sum.Miner.CellsPerSecond = s.Value
		case "rr_miner_mines_total":
			sum.Miner.Mines[s.Labels["result"]] = s.Value
		case "rr_ops_total":
			sum.Miner.Ops[s.Labels["op"]+"_"+s.Labels["result"]] = s.Value
		case "rr_fill_cache_hits_total":
			sum.Miner.FillCache["hits"] = s.Value
		case "rr_fill_cache_misses_total":
			sum.Miner.FillCache["misses"] = s.Value
		case "rr_fill_cache_evictions_total":
			sum.Miner.FillCache["evictions"] = s.Value
		case "rr_online_rows_ingested_total":
			sum.Online.RowsIngested[s.Labels["result"]] = s.Value
		case "rr_online_republishes_total":
			sum.Online.Republishes[s.Labels["result"]] = s.Value
		case "rr_online_promotions_total":
			sum.Online.Promotions = s.Value
		case "rr_online_ge_gate_rejections_total":
			sum.Online.Rejections = s.Value
		case "rr_online_republish_seconds_sum":
			sum.Online.Republish.Seconds = s.Value
		case "rr_online_republish_seconds_count":
			sum.Online.Republish.Count = s.Value
		case "rr_online_ge_gate_seconds_sum":
			sum.Online.GEGate.Seconds = s.Value
		case "rr_online_ge_gate_seconds_count":
			sum.Online.GEGate.Count = s.Value
		case "rr_alert_evals_total":
			sum.Alerts.Evals = s.Value
		case "rr_alert_transitions_total":
			sum.Alerts.Transitions[s.Labels["to"]] = s.Value
		case "rr_online_ge_evals_total":
			sum.Alerts.GEEvals[s.Labels["result"]] = s.Value
		case "rr_online_auto_rollbacks_total":
			sum.Alerts.AutoRollbacks = s.Value
		case "rr_cluster_rows_total":
			sum.ClusterMetrics.Rows[s.Labels["result"]] = s.Value
		case "rr_cluster_chunks_total":
			sum.ClusterMetrics.Chunks[s.Labels["result"]] = s.Value
		case "rr_cluster_merges_total":
			sum.ClusterMetrics.Merges[s.Labels["result"]] = s.Value
		case "rr_cluster_shard_pulls_total":
			sum.ClusterMetrics.Pulls[s.Labels["result"]] = s.Value
		case "rr_cluster_worker_rows_total":
			sum.ClusterMetrics.WorkerRows = s.Value
		case "rr_cluster_reshardings_total":
			sum.ClusterMetrics.Reshardings = s.Value
		}
	}
	if sum.Online.Republish.Seconds > 0 {
		sum.Online.GateFrac = sum.Online.GEGate.Seconds / sum.Online.Republish.Seconds
	}
	hits, misses := sum.Miner.FillCache["hits"], sum.Miner.FillCache["misses"]
	if total := hits + misses; total > 0 {
		sum.Miner.CacheHitRate = hits / total
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}
