package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("100, 200,300")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{100, 200, 300}) {
		t.Errorf("parseSizes = %v", got)
	}
	if got, err := parseSizes(""); err != nil || got != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
	if _, err := parseSizes("1,x"); err == nil {
		t.Error("bad size must fail")
	}
}

func TestRunTable2(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Errorf("output missing table:\n%s", buf.String())
	}
}

func TestRunFig12(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig12"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quantitative") {
		t.Errorf("output missing comparison:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "nope"}, &buf); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunFig6BadDataset(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig6", "-dataset", "nope"}, &buf); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestDatDir(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-experiment", "table2", "-datdir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nba.d2", "nba2.d2", "baseball.d2", "abalone.d2", "ge_nba.dat", "scaleup.dat"} {
		data, err := os.ReadFile(filepath.Join(dir, want))
		if err != nil {
			t.Fatalf("%s not written: %v", want, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", want)
		}
		// Every line must be whitespace-separated numbers.
		for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			for _, field := range strings.Fields(line) {
				if _, err := strconv.ParseFloat(field, 64); err != nil {
					t.Fatalf("%s line %d field %q not numeric", want, i+1, field)
				}
			}
		}
	}
}

func TestRunRemainingExperiments(t *testing.T) {
	// Exercise every CLI route end to end (fig7/fig6/fig8 are the slow
	// ones; fig8 gets a tiny sweep).
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-experiment", "fig9"}, "baseball"},
		{[]string{"-experiment", "fig11"}, "Jordan"},
		{[]string{"-experiment", "sec63"}, "butter"},
		{[]string{"-experiment", "robust"}, "robust mining"},
		{[]string{"-experiment", "learncurve", "-dataset", "abalone"}, "Learning curve"},
		{[]string{"-experiment", "cutoff", "-dataset", "abalone"}, "Eq. 1 cutoff"},
		{[]string{"-experiment", "fig8", "-sizes", "500,1000"}, "Figure 8"},
		{[]string{"-experiment", "fig7"}, "Figure 7"},
		{[]string{"-experiment", "fig6", "-dataset", "nba"}, "Figure 6"},
	} {
		var buf strings.Builder
		if err := run(tc.args, &buf); err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("%v: output missing %q", tc.args, tc.want)
		}
	}
}

func TestRunBadSizes(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig8", "-sizes", "x"}, &buf); err == nil {
		t.Error("bad sizes must fail")
	}
}

func TestRunJSONSummary(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "sec63", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "butter") {
		t.Errorf("-json still printed the human table:\n%s", out)
	}
	var sum benchSummary
	if err := json.Unmarshal([]byte(out), &sum); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(sum.Experiments) != 1 || sum.Experiments[0].Name != "sec63" {
		t.Fatalf("experiments = %+v", sum.Experiments)
	}
	if sum.Experiments[0].Seconds <= 0 || sum.TotalSeconds <= 0 {
		t.Errorf("timings not positive: %+v", sum)
	}
	// sec63 mines the basket data and reconstructs records, so the
	// instrumented phases, throughput and fill ops must have moved.
	for _, phase := range []string{"scan", "covariance", "eigensolve"} {
		if sum.Miner.Phases[phase].Count < 1 {
			t.Errorf("phase %q count = %v, want >= 1 (phases %+v)",
				phase, sum.Miner.Phases[phase].Count, sum.Miner.Phases)
		}
	}
	if sum.Miner.RowsScanned < 1 || sum.Miner.CellsScanned < sum.Miner.RowsScanned {
		t.Errorf("throughput totals wrong: %+v", sum.Miner)
	}
	if sum.Miner.Mines["ok"] < 1 {
		t.Errorf("mines = %v", sum.Miner.Mines)
	}
	if sum.Miner.Ops["fill_ok"] < 1 {
		t.Errorf("ops = %v", sum.Miner.Ops)
	}
}

// TestRunOutFile checks -out: the tables stay on stdout while the same
// JSON summary — including the batch experiment's cache hit rate —
// lands in the file.
func TestRunOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf strings.Builder
	args := []string{"-experiment", "batch", "-batch-rows", "500", "-batch-patterns", "4", "-out", path}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote summary to") {
		t.Errorf("stdout missing the -out note:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum benchSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("-out file is not valid JSON: %v\n%s", err, data)
	}
	if len(sum.Experiments) != 1 || sum.Experiments[0].Name != "batch" {
		t.Fatalf("experiments = %+v", sum.Experiments)
	}
	// 500 rows over 4 hole patterns: the fill-plan cache must see far
	// more hits than misses.
	if sum.Miner.CacheHitRate <= 0.5 || sum.Miner.CacheHitRate > 1 {
		t.Errorf("cache_hit_rate = %v (fill_cache %v), want (0.5, 1]",
			sum.Miner.CacheHitRate, sum.Miner.FillCache)
	}
}
