// Command rrmine mines Ratio Rules from a CSV data matrix (header row of
// attribute names, numeric rows) in a single pass and prints the rule
// table; optionally it saves the rules as JSON for later use with
// rrguess, or mines straight into a durable model store that rrserve
// -data-dir serves (offline mining, online serving).
//
// Usage:
//
//	rrmine -in sales.csv [-energy 0.85 | -k 3] [-out rules.json]
//	       [-store ./models [-name sales]] [-v]
//
// -store journals the mined model into the store directory as a new
// version (creating the store if needed); -name defaults to the input
// file's base name without extension. -v enables debug logging
// (RR_LOG_LEVEL/RR_LOG_FORMAT are honored, see internal/obs); timings
// and throughput are logged to stderr so stdout stays parseable.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ratiorules"
	"ratiorules/internal/dataset"
	"ratiorules/internal/obs"
	"ratiorules/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrmine:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rrmine", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input CSV file (header + numeric rows); required")
		out      = fs.String("out", "", "optional path to save the mined rules as JSON")
		storeDir = fs.String("store", "", "optional model store directory to mine into (see rrserve -data-dir)")
		name     = fs.String("name", "", "model name in the store (default: input file base name)")
		energy   = fs.Float64("energy", ratiorules.DefaultEnergy, "Eq. 1 variance-coverage cutoff in (0, 1]")
		k        = fs.Int("k", -1, "retain exactly k rules instead of the energy cutoff")
		verbose  = fs.Bool("v", false, "debug logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := obs.Setup(*verbose)
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := dataset.NewCSVSource(f)
	if err != nil {
		return err
	}

	opts := []ratiorules.Option{ratiorules.WithAttrNames(src.Header())}
	if *k >= 0 {
		opts = append(opts, ratiorules.WithFixedK(*k))
	} else {
		opts = append(opts, ratiorules.WithEnergy(*energy))
	}
	miner, err := ratiorules.NewMiner(opts...)
	if err != nil {
		return err
	}
	start := time.Now()
	rules, err := miner.Mine(src)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	logger.Info("mined",
		"in", *in,
		"rows", rules.TrainedRows(),
		"attrs", rules.M(),
		"k", rules.K(),
		"seconds", elapsed.Seconds(),
		"rows_per_second", obs.Rate(rules.TrainedRows(), elapsed),
	)
	fmt.Print(rules)
	fmt.Println("\ninterpretation (Fig. 10 methodology):")
	for _, reading := range rules.Interpret(0) {
		fmt.Println(" ", reading)
	}

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := rules.Save(of); err != nil {
			return err
		}
		fmt.Printf("\nrules saved to %s\n", *out)
	}

	if *storeDir != "" {
		modelName := *name
		if modelName == "" {
			base := filepath.Base(*in)
			modelName = strings.TrimSuffix(base, filepath.Ext(base))
		}
		st, err := store.Open(*storeDir, store.WithLogger(logger))
		if err != nil {
			return err
		}
		version, err := st.Put(modelName, rules)
		if err != nil {
			st.Close()
			return err
		}
		if err := st.Close(); err != nil {
			return err
		}
		fmt.Printf("\nmodel %q v%d stored in %s\n", modelName, version, *storeDir)
	}
	return nil
}
