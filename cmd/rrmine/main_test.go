package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ratiorules"
	"ratiorules/internal/store"
)

func writeSalesCSV(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("bread,milk,butter\n")
	// milk = 2×bread, butter = 0.5×bread.
	for i := 1; i <= 50; i++ {
		v := float64(i) * 0.2
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(2*v, 'g', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(0.5*v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "sales.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMineEndToEnd(t *testing.T) {
	csvPath := writeSalesCSV(t)
	rulesPath := filepath.Join(t.TempDir(), "rules.json")
	if err := run([]string{"-in", csvPath, "-k", "1", "-out", rulesPath}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rules, err := ratiorules.LoadRules(f)
	if err != nil {
		t.Fatal(err)
	}
	if rules.K() != 1 || rules.M() != 3 {
		t.Errorf("K=%d M=%d, want 1, 3", rules.K(), rules.M())
	}
	if rules.AttrName(1) != "milk" {
		t.Errorf("AttrName(1) = %q, want milk", rules.AttrName(1))
	}
	// The rule should reflect the 1:2:0.5 spending ratio.
	rr1 := rules.Rule(0)
	if rr1[1]/rr1[0] < 1.9 || rr1[1]/rr1[0] > 2.1 {
		t.Errorf("milk:bread = %v, want ≈ 2", rr1[1]/rr1[0])
	}
}

func TestMineMissingInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -in must fail")
	}
	if err := run([]string{"-in", "/nonexistent/file.csv"}); err == nil {
		t.Error("nonexistent input must fail")
	}
}

func TestMineBadOptions(t *testing.T) {
	csvPath := writeSalesCSV(t)
	if err := run([]string{"-in", csvPath, "-energy", "2"}); err == nil {
		t.Error("energy > 1 must fail")
	}
}

func TestMineIntoStore(t *testing.T) {
	csvPath := writeSalesCSV(t)
	dir := filepath.Join(t.TempDir(), "models")
	if err := run([]string{"-in", csvPath, "-k", "1", "-store", dir}); err != nil {
		t.Fatal(err)
	}
	// Default model name is the CSV base name; a second run makes v2.
	if err := run([]string{"-in", csvPath, "-k", "1", "-store", dir, "-name", "groceries"}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rules, version, ok := st.Get("sales")
	if !ok || version != 1 {
		t.Fatalf("store model sales: v%d ok=%v", version, ok)
	}
	if rules.K() != 1 || rules.M() != 3 || rules.AttrName(1) != "milk" {
		t.Errorf("stored rules: K=%d M=%d attr1=%q", rules.K(), rules.M(), rules.AttrName(1))
	}
	if _, _, ok := st.Get("groceries"); !ok {
		t.Error("named model missing from store")
	}
}
