package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVizBuiltinDataset(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-dataset", "nba", "-x", "1", "-y", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nba", "RR1", "RR2", "Jordan"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestVizCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.csv")
	csv := "a,b\n"
	for i := 0; i < 30; i++ {
		csv += "1,2\n2,4\n3,6\n"
	}
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-in", path, "-x", "1", "-y", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RR space") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestVizFlagValidation(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("missing source must fail")
	}
	if err := run([]string{"-dataset", "nba", "-in", "x.csv"}, &buf); err == nil {
		t.Error("both sources must fail")
	}
	if err := run([]string{"-in", "/nonexistent.csv"}, &buf); err == nil {
		t.Error("missing file must fail")
	}
}

func TestVizCorrMode(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-dataset", "abalone", "-mode", "corr"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"correlations", "length", "@", "scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("corr output missing %q", want)
		}
	}
}

func TestVizCorrCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.csv")
	csv := "a,b\n1,-1\n2,-2\n3,-3\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-in", path, "-mode", "corr"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Errorf("anti-correlated pair should shade '#':\n%s", buf.String())
	}
}
