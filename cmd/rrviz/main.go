// Command rrviz projects a dataset onto two Ratio Rules and renders the
// scatter plot in the terminal — the paper's "visualization for free"
// (Sec. 6.1, Figs. 9 and 11).
//
// Usage:
//
//	rrviz -dataset nba -x 1 -y 2      # built-in synthetic dataset
//	rrviz -in sales.csv -x 1 -y 2    # any CSV matrix
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"ratiorules"
	"ratiorules/internal/dataset"
	"ratiorules/internal/experiments"
	"ratiorules/internal/stats"
	"ratiorules/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrviz:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rrviz", flag.ContinueOnError)
	var (
		name = fs.String("dataset", "", "built-in dataset: nba, baseball or abalone")
		in   = fs.String("in", "", "CSV file to visualize instead of a built-in dataset")
		x    = fs.Int("x", 1, "1-based rule index of the x axis")
		y    = fs.Int("y", 2, "1-based rule index of the y axis")
		mode = fs.String("mode", "scatter", "scatter (RR-space projection) or corr (correlation heatmap)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *name != "" && *in != "":
		return fmt.Errorf("use either -dataset or -in, not both")
	case *name != "" && *mode == "corr":
		ds, err := experiments.DatasetByName(*name)
		if err != nil {
			return err
		}
		return vizCorr(w, ds)
	case *name != "":
		res, err := experiments.RunScatter(*name, *x, *y)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		return nil
	case *in != "" && *mode == "corr":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err := dataset.ReadCSV(*in, f)
		if err != nil {
			return err
		}
		return vizCorr(w, ds)
	case *in != "":
		return vizCSV(w, *in, *x, *y)
	default:
		fs.Usage()
		return fmt.Errorf("missing -dataset or -in")
	}
}

// vizCorr renders the attribute correlation matrix as a heatmap, a quick
// way to see which attribute pairs a Ratio Rule will bind together.
func vizCorr(w io.Writer, ds *dataset.Dataset) error {
	n, m := ds.X.Dims()
	if n < 2 {
		return fmt.Errorf("need at least 2 rows for correlations, have %d", n)
	}
	scatter, _ := stats.ScatterTwoPass(ds.X)
	corr := make([][]float64, m)
	for i := 0; i < m; i++ {
		corr[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			d := scatter.At(i, i) * scatter.At(j, j)
			if d <= 0 {
				continue
			}
			corr[i][j] = scatter.At(i, j) / math.Sqrt(d)
		}
	}
	fmt.Fprint(w, textplot.Heatmap(
		fmt.Sprintf("attribute correlations of '%s' (%d rows)", ds.Name, n),
		ds.Attrs, corr))
	return nil
}

func vizCSV(w io.Writer, path string, x, y int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(path, f)
	if err != nil {
		return err
	}
	need := x
	if y > need {
		need = y
	}
	miner, err := ratiorules.NewMiner(ratiorules.WithFixedK(need), ratiorules.WithAttrNames(ds.Attrs))
	if err != nil {
		return err
	}
	rules, err := miner.MineMatrix(ds.X)
	if err != nil {
		return err
	}
	proj, err := rules.Project(ds.X, need)
	if err != nil {
		return err
	}
	pts := make([]textplot.Point, proj.Rows())
	for i := range pts {
		pts[i] = textplot.Point{X: proj.At(i, x-1), Y: proj.At(i, y-1)}
	}
	fmt.Fprint(w, textplot.Scatter(
		fmt.Sprintf("'%s': %d points in RR space", path, len(pts)),
		fmt.Sprintf("RR%d", x), fmt.Sprintf("RR%d", y), pts, 70, 22))
	return nil
}
