// Command healthprobe issues one HTTP GET and exits 0 on a 2xx
// response, 1 otherwise. It exists for container healthchecks: the
// distroless runtime image (see Dockerfile) has no shell or curl, so
// compose/Kubernetes probes exec this static binary against the
// service's own /healthz and /readyz endpoints instead.
//
// Usage:
//
//	healthprobe [-timeout 2s] <url>
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	timeout := flag.Duration("timeout", 2*time.Second, "request timeout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: healthprobe [-timeout 2s] <url>")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "healthprobe:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fmt.Fprintf(os.Stderr, "healthprobe: %s answered %s\n", flag.Arg(0), resp.Status)
		os.Exit(1)
	}
	os.Exit(0)
}
