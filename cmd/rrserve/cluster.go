package main

// Cluster modes of rrserve (see docs/cluster.md).
//
// Worker node: `rrserve -node -addr :9301 -coordinator http://co:8080`
// serves the internal shard API (binary fan-out ingest, shard
// snapshots, health) plus /metrics, and announces itself to the
// coordinator on startup. Nodes hold no model store, run no eigensolve
// and publish nothing — they only fold rows into per-model shards.
//
// Coordinator: `rrserve -cluster-workers http://n1:9301,http://n2:9301`
// runs the normal public API, but POST ingest fans rows out across the
// workers and a background loop pulls shard snapshots, merges them
// exactly, and republishes through the same GE gate and store as a
// single node.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"ratiorules/internal/cluster"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
)

// announceRetries is how many times a node retries its join announce —
// the coordinator may still be booting when the node comes up.
const announceRetries = 30

// runNode serves one cluster worker node until ctx is cancelled.
func runNode(ctx context.Context, logger *slog.Logger, addr, coordinator, advertise string) error {
	reg := obs.Default()
	obs.RegisterRuntime(reg)
	obs.RegisterBuildInfo(reg)
	// The worker tracer continues coordinator fan-out traces: each wire
	// chunk carries the coordinator's traceparent, the fold spans parent
	// onto it, and GET /debug/traces/{id} here serves this node's share
	// of the trace.
	tracer := trace.New(trace.Config{
		Logger:  logger,
		Dropped: obs.SpanDropCounter(reg),
	})
	w := cluster.NewWorker(cluster.WithWorkerObs(reg), cluster.WithWorkerTracer(tracer))
	mux := http.NewServeMux()
	mux.Handle("/", w.Handler())
	mux.Handle("GET /metrics", reg.Handler())

	srv := &http.Server{
		Handler: mux,
		// No global read/write timeouts: fan-out streams live as long as
		// the coordinator session and guard themselves with rolling
		// deadlines (see cluster.Worker.serveIngest).
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if advertise == "" {
		advertise = advertiseURL(ln.Addr())
	}
	logger.Info("rrserve node listening",
		"addr", ln.Addr().String(), "instance", w.Instance(), "advertise", advertise)
	if notifyListening != nil {
		notifyListening("node", ln.Addr().String())
	}

	if coordinator != "" {
		go announce(ctx, logger, coordinator, advertise)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		_ = srv.Close()
		return err
	}
	logger.Info("node drained cleanly")
	return nil
}

// advertiseURL derives the node's announce URL from its bound listener,
// substituting loopback for the unspecified address a bare ":9301"
// binds to.
func advertiseURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// announce POSTs the node's URL to the coordinator's join route,
// retrying with backoff until admitted or ctx ends.
func announce(ctx context.Context, logger *slog.Logger, coordinator, self string) {
	body, _ := json.Marshal(map[string]string{"url": self})
	target := strings.TrimRight(coordinator, "/") + "/v1/cluster/join"
	backoff := 200 * time.Millisecond
	for attempt := 1; attempt <= announceRetries; attempt++ {
		reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			cancel()
			logger.Error("building join announce", "err", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		cancel()
		if err == nil {
			status := resp.StatusCode
			resp.Body.Close()
			if status == http.StatusOK {
				logger.Info("joined cluster", "coordinator", coordinator, "as", self)
				return
			}
			err = fmt.Errorf("coordinator answered %d", status)
		}
		logger.Warn("join announce failed, retrying",
			"coordinator", coordinator, "attempt", attempt, "err", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
	logger.Error("giving up announcing to coordinator", "coordinator", coordinator)
}

// splitWorkers parses the -cluster-workers list.
func splitWorkers(raw string) []string {
	var out []string
	for _, part := range strings.Split(raw, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
