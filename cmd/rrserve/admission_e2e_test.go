package main

// End-to-end admission coverage through the real binary: boot with a
// -tenants-file, exercise bearer auth, cross-tenant 404 isolation,
// per-tenant rate limiting with Retry-After, the admission surfaces
// (/readyz block, /debug/admission, rr_admission_* metrics), and a
// live SIGHUP registry reload.

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// authDo issues a request with an optional bearer token and returns
// status, body, and the response headers.
func authDo(t *testing.T, method, url, token, body string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func TestAdmissionE2E(t *testing.T) {
	dir := t.TempDir()
	tenantsPath := filepath.Join(dir, "tenants.json")
	writeFile := func(body string) {
		t.Helper()
		if err := os.WriteFile(tenantsPath, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// No anonymous tenant: unauthenticated requests answer 401. globex
	// gets a one-request bucket so the second immediate call is shed.
	writeFile(`{
		"tenants": [
			{"id": "acme", "token": "acme-token"},
			{"id": "globex", "token": "globex-token",
			 "limits": {"requests_per_second": 1, "request_burst": 1}}
		]
	}`)

	addrs, shutdown := startServe(t, "-addr", "127.0.0.1:0", "-tenants-file", tenantsPath)
	base := "http://" + addrs["main"]

	// Probes stay open — liveness must not require a tenant token.
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}

	// Unauthenticated and unknown-token mutations answer 401 with the
	// envelope code and a WWW-Authenticate challenge.
	rows := `{"name":"m","rows":[[1,2],[2,4],[3,6],[4,8],[5,10]]}`
	if code, body, hdr := authDo(t, "POST", base+"/v1/rules", "", rows); code != 401 ||
		!strings.Contains(body, `"unauthorized"`) || hdr.Get("WWW-Authenticate") == "" {
		t.Fatalf("anonymous mine = %d %q (WWW-Authenticate %q)", code, body, hdr.Get("WWW-Authenticate"))
	}
	if code, _, _ := authDo(t, "POST", base+"/v1/rules", "bogus", rows); code != 401 {
		t.Fatalf("unknown token = %d, want 401", code)
	}

	// acme mines a model; globex must not be able to see it.
	if code, body, _ := authDo(t, "POST", base+"/v1/rules", "acme-token", rows); code != 201 {
		t.Fatalf("acme mine = %d: %s", code, body)
	}
	if code, _, _ := authDo(t, "GET", base+"/v1/rules/m", "acme-token", ""); code != 200 {
		t.Fatalf("acme get = %d, want 200", code)
	}
	if code, body, _ := authDo(t, "GET", base+"/v1/rules/m", "globex-token", ""); code != 404 ||
		!strings.Contains(body, `"not_found"`) {
		t.Fatalf("cross-tenant get = %d %q, want plain 404", code, body)
	}

	// globex's one-token bucket: the GET above drained it, so a burst of
	// immediate retries sheds 429 rate_limited with a Retry-After.
	limited := false
	for i := 0; i < 3 && !limited; i++ {
		code, body, hdr := authDo(t, "GET", base+"/v1/rules/m", "globex-token", "")
		if code == 429 {
			limited = true
			if !strings.Contains(body, `"rate_limited"`) {
				t.Errorf("429 body = %q, want rate_limited code", body)
			}
			if hdr.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}
	}
	if !limited {
		t.Error("globex burst never rate-limited")
	}

	// Admission surfaces: readiness block, debug snapshot, metrics.
	if code, body := get(t, base+"/readyz"); code != 200 || !strings.Contains(body, `"admission"`) {
		t.Fatalf("readyz = %d %q, want admission block", code, body)
	}
	if code, body := get(t, base+"/debug/admission"); code != 200 ||
		!strings.Contains(body, `"acme"`) || !strings.Contains(body, `"globex"`) {
		t.Fatalf("debug/admission = %d %.200q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, "rr_admission_requests_total") ||
		!strings.Contains(body, "rr_admission_tenants 2") {
		t.Fatalf("metrics = %d, missing admission series", code)
	}

	// Registry rotation: add a tenant, SIGHUP, and the new token starts
	// working without a restart (the mtime poll would also catch it;
	// the signal just makes the cutover immediate).
	writeFile(`{
		"tenants": [
			{"id": "acme", "token": "acme-token"},
			{"id": "globex", "token": "globex-token",
			 "limits": {"requests_per_second": 1, "request_burst": 1}},
			{"id": "initech", "token": "initech-token"}
		]
	}`)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ := authDo(t, "GET", base+"/v1/rules", "initech-token", "")
		if code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("initech token still answers %d after reload", code)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// acme's model survived the reload untouched.
	if code, _, _ := authDo(t, "GET", base+"/v1/rules/m", "acme-token", ""); code != 200 {
		t.Fatalf("acme get after reload = %d", code)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestAdmissionFlagsWithoutFile turns admission on via tuning flags
// alone: every caller maps to the anonymous tenant with the flag-given
// defaults, and the store keys stay unprefixed (single-tenant layout).
func TestAdmissionFlagsWithoutFile(t *testing.T) {
	dir := t.TempDir()
	addrs, shutdown := startServe(t,
		"-addr", "127.0.0.1:0", "-data-dir", dir,
		"-admission-rps", "1", "-admission-burst", "2")
	base := "http://" + addrs["main"]

	rows := `{"name":"solo","rows":[[1,2],[2,4],[3,6],[4,8],[5,10]]}`
	if code, body := postJSON(t, base+"/v1/rules", rows); code != 201 {
		t.Fatalf("anonymous mine = %d: %s", code, body)
	}
	// Burst 2 is drained by the mine + one GET; the next immediate
	// request sheds.
	limited := false
	for i := 0; i < 4 && !limited; i++ {
		code, _ := get(t, base+"/v1/rules/solo")
		limited = code == 429
	}
	if !limited {
		t.Error("anonymous default rate limit never applied")
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Single-tenant store layout: the model file lives under its plain
	// name, no tenant prefix directory.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	for _, e := range ents {
		if e.IsDir() && e.Name() == "anon" {
			t.Fatalf("store grew a tenant-scope directory: %v", names)
		}
	}
}
