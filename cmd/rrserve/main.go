// Command rrserve runs the Ratio Rules HTTP service: mine models from
// JSON row sets and query them for reconstruction, forecasting and outlier
// detection. With -data-dir every model mutation is journaled to an
// embedded write-ahead-log store (see docs/persistence.md), so mined
// models — and their version history — survive restarts and crashes.
// Prometheus metrics are exposed at GET /metrics, liveness at
// GET /healthz, recent request traces at GET /debug/traces (see
// -trace-buffer / -trace-slow), and the server drains in-flight
// requests for up to 10s on SIGINT/SIGTERM before exiting.
//
// With -follow the server runs as a read-only follower replica: it
// tails the leader's committed WAL over GET /v1/replicate into its own
// store (durable with -data-dir, resuming from the checkpointed seq
// after a restart), serves every GET and inference route with bodies
// and ETags byte-identical to the leader, and answers mutating routes
// 403 read_only pointing at the leader (docs/replication.md).
//
// Usage:
//
//	rrserve -addr :8080 [-data-dir ./models] [-debug-addr :6060] [-v]
//
// Flags and environment:
//
//	-addr            listen address (default :8080)
//	-data-dir        model store directory; empty (the default) keeps
//	                 models in memory only. Opened (or created) at boot
//	                 with crash recovery, flushed on graceful shutdown
//	-snapshot-every  store events between automatic snapshots (default 64)
//	-max-versions    retained revisions per model (default 32, <= 0 all)
//	-max-body-bytes  request body cap, 413 beyond it (default 32 MiB);
//	                 the streaming /batch endpoints are exempt
//	-batch-workers   worker pool width per /batch request (default:
//	                 one worker per CPU)
//	-trace-buffer    flight-recorder capacity in completed traces
//	                 (default 256); the last N request span trees are
//	                 queryable at GET /debug/traces
//	-trace-slow      always-on slow-trace log threshold (default 1s);
//	                 0 disables the log line, not the tracing
//	-debug-addr      optional side listener serving net/http/pprof under
//	                 /debug/pprof/ — keep it on localhost or a private
//	                 network, never the public service address
//	-republish-rows  ingested rows between re-mines of a live stream
//	                 (default 256; see docs/online.md)
//	-republish-every interval re-mine of dirty live streams (default 0,
//	                 disabled; row-count triggers still apply)
//	-ge-slack        allowed relative GE1 regression before the promotion
//	                 gate rejects a re-mined candidate (default 0.05)
//	-reservoir       holdout reservoir rows per live stream (default 256)
//	-checkpoint-every republishes between stream checkpoints (default 8);
//	                 streams also checkpoint on graceful shutdown
//	-ge-eval-every   interval re-score of every served model against its
//	                 live holdout reservoir (default 0, disabled); each
//	                 tick appends a GE sample and runs the alert rules
//	-ge-history      retained GE samples per live stream (default 256)
//	-auto-rollback   when a sustained GE regression alert fires, roll the
//	                 model back to the best-scoring retained version
//	                 (default off; see docs/observability.md)
//	-rollback-margin relative GE improvement an old version must offer
//	                 before auto-rollback picks it (default 0.2)
//	-rollback-cooldown minimum gap between automatic rollbacks per
//	                 stream (default 5m) — the flap gate
//	-alert-ge-max    absolute GE1 ceiling alert (default 0, disabled)
//	-alert-ratio     regression alert ratio vs trailing baseline (1.5)
//	-alert-for       breach duration before an alert fires (default 0)
//	-alert-cooldown  post-resolve suppression window (default 5m)
//	-node            run as a cluster worker node: serve only the
//	                 internal shard API and /metrics (docs/cluster.md)
//	-coordinator     coordinator base URL a -node announces itself to
//	-advertise       public URL of this -node (default from -addr)
//	-cluster-workers comma-separated worker URLs; non-empty makes this
//	                 server the cluster coordinator: ingest fans out,
//	                 merges republish through the normal GE gate
//	-cluster-chunk   rows per fan-out chunk (default 512)
//	-cluster-pull-every     pull-merge-republish interval (default 2s)
//	-cluster-pull-retries   pull retries before degraded merge (3)
//	-cluster-backoff        initial pull retry backoff (default 100ms)
//	-cluster-health-every   membership probe interval (default 1s)
//	-cluster-republish-rows acked rows forcing an early merge (65536)
//	-follow          leader base URL; non-empty runs this server as a
//	                 read-only follower replica tailing the leader's WAL
//	                 (incompatible with -node and -cluster-workers)
//	-max-replica-lag replication staleness bound; beyond it a follower's
//	                 /readyz answers 503 replica_lagging (default 30s)
//	-replication-log committed events retained in memory for follower
//	                 catch-up; followers further behind bootstrap from a
//	                 snapshot frame instead (default 1024)
//	-profile-every   continuous-profiling capture cadence (default 1m;
//	                 0 disables the loop — /debug/profiles then lists
//	                 an empty ring)
//	-profile-cpu     CPU capture window per cycle (default 50ms; 0
//	                 keeps only heap/goroutine snapshots)
//	-fleet-members   comma-separated [name=]url member list; non-empty
//	                 (or coordinator mode, which feeds live cluster
//	                 membership automatically) starts the fleet
//	                 collector serving GET /metrics/fleet and
//	                 GET /debug/fleet (docs/observability.md)
//	-fleet-every     fleet scrape interval (default 5s)
//	-fleet-self      node label for this node's own series in the
//	                 fleet exposition (default "self")
//	-tenants-file    JSON tenant registry (bearer tokens, per-tenant
//	                 limit overrides); setting it — or any admission
//	                 flag below — turns admission control on. The file
//	                 is hot-reloaded on SIGHUP or on-disk change
//	                 (docs/api.md, docs/runbook.md)
//	-admission-rps   default per-tenant request rate (requests/s,
//	                 0 = unlimited); -admission-burst sets the bucket
//	                 burst (0 = one second of rate)
//	-admission-rows  default per-tenant ingest row rate (rows/s) with
//	                 -admission-row-burst; -admission-batch-rows and
//	                 -admission-batch-row-burst meter /batch rows
//	-admission-inflight default per-tenant in-flight request quota
//	                 (0 = unlimited)
//	-admission-wait  bounded wait for a quota slot or row tokens
//	                 before a request sheds with 429 (default 100ms)
//	-max-inflight    global in-flight ceiling; beyond it requests shed
//	                 lowest-priority tenants first (0 disables)
//	-ingest-queue    bounded waiters behind each model's ingest fold
//	                 (default 64; < 0 disables the queue)
//	-v               debug logging (overrides RR_LOG_LEVEL)
//	RR_LOG_LEVEL  debug|info|warn|error (default info)
//	RR_LOG_FORMAT text|json (default text)
//
// Example session:
//
//	curl -X POST localhost:8080/v1/rules -d '{"name":"sales","rows":[[1,2],[2,4],[3,6]]}'
//	curl -X POST localhost:8080/v1/rules/sales/fill -d '{"record":[4,0],"holes":[1]}'
//	curl localhost:8080/v1/rules/sales/versions
//	curl -X POST localhost:8080/v1/rules/sales/rollback -d '{"version":1}'
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ratiorules/internal/admission"
	"ratiorules/internal/cluster"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/alert"
	"ratiorules/internal/obs/fleet"
	"ratiorules/internal/obs/profile"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/online"
	"ratiorules/internal/replica"
	"ratiorules/internal/server"
	"ratiorules/internal/store"
)

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

// notifyListening, when non-nil, receives each listener's bound
// address ("main" or "debug") — a test seam for -addr :0.
var notifyListening func(name, addr string)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rrserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		dataDir       = fs.String("data-dir", "", "model store directory (empty = in-memory only)")
		snapshotEvery = fs.Int("snapshot-every", 64, "store events between automatic snapshots (<= 0 disables)")
		maxVersions   = fs.Int("max-versions", 32, "retained revisions per model (<= 0 keeps all)")
		maxBodyBytes  = fs.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "request body cap in bytes (<= 0 disables)")
		batchWorkers  = fs.Int("batch-workers", 0, "worker pool width per /batch request (<= 0 = one per CPU)")
		traceBuffer   = fs.Int("trace-buffer", trace.DefaultBufferSize, "flight-recorder capacity in completed traces")
		traceSlow     = fs.Duration("trace-slow", time.Second, "slow-trace log threshold (0 disables the log)")
		debugAddr     = fs.String("debug-addr", "", "optional pprof side-listener address (e.g. localhost:6060)")
		verbose       = fs.Bool("v", false, "debug logging")

		republishRows   = fs.Int("republish-rows", online.DefaultRepublishRows, "ingested rows between re-mines of a live stream")
		republishEvery  = fs.Duration("republish-every", 0, "interval re-mine of dirty live streams (0 disables)")
		geSlack         = fs.Float64("ge-slack", online.DefaultGESlack, "allowed relative GE1 regression before a candidate is rejected")
		reservoirSize   = fs.Int("reservoir", online.DefaultReservoirSize, "holdout reservoir rows per live stream")
		checkpointEvery = fs.Int("checkpoint-every", online.DefaultCheckpointEvery, "republishes between stream checkpoints (with -data-dir)")

		geEvalEvery      = fs.Duration("ge-eval-every", 0, "interval re-score of served models against the live holdout (0 disables)")
		geHistory        = fs.Int("ge-history", online.DefaultGEHistorySize, "retained GE samples per live stream")
		autoRollback     = fs.Bool("auto-rollback", false, "on a firing GE regression alert, roll back to the best retained version")
		rollbackMargin   = fs.Float64("rollback-margin", online.DefaultRollbackMargin, "relative GE improvement an old version must offer before auto-rollback")
		rollbackCooldown = fs.Duration("rollback-cooldown", online.DefaultRollbackCooldown, "minimum gap between automatic rollbacks per stream")
		alertGEMax       = fs.Float64("alert-ge-max", 0, "absolute GE1 ceiling alert threshold (0 disables the ceiling rule)")
		alertRatio       = fs.Float64("alert-ratio", 1.5, "GE regression alert fires when recent GE exceeds baseline by this factor")
		alertFor         = fs.Duration("alert-for", 0, "breaches must persist this long before an alert fires (0 fires immediately)")
		alertCooldown    = fs.Duration("alert-cooldown", 5*time.Minute, "suppression window after an alert resolves")

		nodeMode    = fs.Bool("node", false, "run as a cluster worker node (shard API only; see docs/cluster.md)")
		coordinator = fs.String("coordinator", "", "coordinator base URL a -node announces itself to")
		advertise   = fs.String("advertise", "", "public URL of this -node for the coordinator (default: derived from -addr)")

		clusterWorkers     = fs.String("cluster-workers", "", "comma-separated worker node URLs; non-empty runs this server as the cluster coordinator")
		clusterChunk       = fs.Int("cluster-chunk", cluster.DefaultChunkRows, "rows per fan-out chunk in coordinator mode")
		clusterPullEvery   = fs.Duration("cluster-pull-every", cluster.DefaultPullEvery, "shard pull-merge-republish interval")
		clusterPullRetries = fs.Int("cluster-pull-retries", cluster.DefaultPullRetries, "shard pull retries before a merge degrades to the retained snapshot")
		clusterBackoff     = fs.Duration("cluster-backoff", cluster.DefaultBackoff, "initial shard pull retry backoff (doubles per attempt)")
		clusterHealth      = fs.Duration("cluster-health-every", cluster.DefaultHealthEvery, "worker membership probe interval")
		clusterRepublish   = fs.Int("cluster-republish-rows", cluster.DefaultRepublishRows, "acked rows that trigger an early merge-republish for a model")

		follow         = fs.String("follow", "", "leader base URL; non-empty runs this server as a read-only follower replica")
		maxReplicaLag  = fs.Duration("max-replica-lag", server.DefaultMaxReplicaLag, "replication staleness beyond which a follower's /readyz answers 503")
		replicationLog = fs.Int("replication-log", store.DefaultReplicationLog, "committed events retained in memory for follower catch-up")

		profileEvery = fs.Duration("profile-every", time.Minute, "continuous-profiling capture cadence (0 disables the capture loop)")
		profileCPU   = fs.Duration("profile-cpu", 50*time.Millisecond, "CPU capture window per profiling cycle (0 keeps only snapshots)")

		fleetMembers = fs.String("fleet-members", "", "comma-separated [name=]url fleet member list; non-empty starts the fleet collector")
		fleetEvery   = fs.Duration("fleet-every", fleet.DefaultInterval, "fleet scrape interval")
		fleetSelf    = fs.String("fleet-self", "self", "node label for this node's own series in the fleet exposition")

		tenantsFile       = fs.String("tenants-file", "", "JSON tenant registry (bearer tokens, per-tenant limits); hot-reloaded on SIGHUP or file change")
		admissionRPS      = fs.Float64("admission-rps", 0, "default per-tenant request rate limit, requests/s (0 = unlimited)")
		admissionBurst    = fs.Float64("admission-burst", 0, "default request-bucket burst (0 = one second of rate)")
		admissionRows     = fs.Float64("admission-rows", 0, "default per-tenant ingest row rate limit, rows/s (0 = unlimited)")
		admissionRowB     = fs.Float64("admission-row-burst", 0, "default ingest row-bucket burst (0 = one second of rate)")
		admissionBatch    = fs.Float64("admission-batch-rows", 0, "default per-tenant batch inference row rate limit, rows/s (0 = unlimited)")
		admissionBatchB   = fs.Float64("admission-batch-row-burst", 0, "default batch row-bucket burst (0 = one second of rate)")
		admissionInflight = fs.Int("admission-inflight", 0, "default per-tenant in-flight request quota (0 = unlimited)")
		admissionWait     = fs.Duration("admission-wait", admission.DefaultMaxWait, "bounded wait for a quota slot or row tokens before shedding")
		maxInflight       = fs.Int("max-inflight", 0, "global in-flight ceiling; beyond it requests shed lowest-priority first (0 disables)")
		ingestQueue       = fs.Int("ingest-queue", admission.DefaultIngestQueue, "bounded waiters behind each model's ingest fold (< 0 disables the queue)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow != "" {
		if *nodeMode {
			return errors.New("-follow and -node are mutually exclusive: a follower replicates a leader, a node serves cluster shards")
		}
		if *clusterWorkers != "" {
			return errors.New("-follow and -cluster-workers are mutually exclusive: a follower is read-only and cannot coordinate ingest")
		}
	}
	logger := obs.Setup(*verbose)
	if *nodeMode {
		return runNode(ctx, logger, *addr, *coordinator, *advertise)
	}

	// The store (memory or durable) carries the replication surface in
	// every role: leaders stream their replog to followers, and a
	// follower's own store keeps the log too, so it can feed further
	// followers (cascading fan-out).
	storeOpts := []store.Option{
		store.WithLogger(logger), store.WithSnapshotEvery(*snapshotEvery),
		store.WithMaxVersions(*maxVersions), store.WithReplicationLog(*replicationLog),
	}
	reg := server.NewRegistryWithStore(store.OpenMemory(storeOpts...))
	closeStore := func() {}
	if *dataDir != "" {
		st, err := store.Open(*dataDir, storeOpts...)
		if err != nil {
			return fmt.Errorf("opening model store: %w", err)
		}
		reg = server.NewRegistryWithStore(st)
		logger.Info("model store open", "dir", *dataDir, "models", st.Len())
		closeStore = func() {
			if err := st.Close(); err != nil {
				logger.Error("closing model store", "err", err)
			} else {
				logger.Info("model store flushed and closed", "dir", *dataDir)
			}
		}
	}
	defer closeStore()

	tracer := trace.New(trace.Config{
		BufferSize: *traceBuffer,
		Slow:       *traceSlow,
		Logger:     logger,
		Dropped:    obs.SpanDropCounter(obs.Default()),
	})

	// Alert rules: the defaults (regression ratio, drift slope,
	// rejection rate) with the tuning flags applied, plus an absolute
	// GE ceiling when -alert-ge-max is set.
	rules := alert.DefaultRules()
	for i := range rules {
		if rules[i].Kind == alert.KindRegression {
			rules[i].Ratio = *alertRatio
		}
		rules[i].For = *alertFor
		rules[i].Cooldown = *alertCooldown
	}
	if *alertGEMax > 0 {
		rules = append(rules, alert.Rule{
			Name: "ge_ceiling", Kind: alert.KindCeiling, Max: *alertGEMax,
			For: *alertFor, Cooldown: *alertCooldown,
		})
	}
	alerts, err := alert.NewEngine(alert.Config{Rules: rules, Logger: logger})
	if err != nil {
		return fmt.Errorf("building alert engine: %w", err)
	}

	onlineCfg := online.Config{
		RepublishRows:    *republishRows,
		RepublishEvery:   *republishEvery,
		GESlack:          *geSlack,
		ReservoirSize:    *reservoirSize,
		CheckpointEvery:  *checkpointEvery,
		GEEvalEvery:      *geEvalEvery,
		GEHistorySize:    *geHistory,
		Alerts:           alerts,
		AutoRollback:     *autoRollback,
		RollbackMargin:   *rollbackMargin,
		RollbackCooldown: *rollbackCooldown,
		Logger:           logger,
		Tracer:           tracer,
	}
	if *dataDir != "" {
		// Stream checkpoints live beside the model store so one -data-dir
		// carries both the served models and the accumulators feeding them.
		onlineCfg.CheckpointDir = filepath.Join(*dataDir, "online")
	}
	mgr, err := online.NewManager(reg, onlineCfg)
	if err != nil {
		return fmt.Errorf("starting online manager: %w", err)
	}
	mgr.Start()
	defer func() {
		if err := mgr.Close(); err != nil {
			logger.Error("closing online manager", "err", err)
		} else if onlineCfg.CheckpointDir != "" {
			logger.Info("live streams checkpointed", "dir", onlineCfg.CheckpointDir)
		}
	}()

	handlerOpts := []server.HandlerOption{
		server.WithLogger(logger), server.WithMaxBodyBytes(*maxBodyBytes),
		server.WithBatchWorkers(*batchWorkers), server.WithTracer(tracer),
		server.WithOnline(mgr),
	}
	var coord *cluster.Coordinator // non-nil in coordinator mode; feeds the fleet collector
	if *clusterWorkers != "" {
		coord, err = cluster.New(cluster.Config{
			Workers:       splitWorkers(*clusterWorkers),
			Manager:       mgr,
			ChunkRows:     *clusterChunk,
			PullEvery:     *clusterPullEvery,
			PullRetries:   *clusterPullRetries,
			Backoff:       *clusterBackoff,
			HealthEvery:   *clusterHealth,
			RepublishRows: *clusterRepublish,
			Tracer:        tracer,
			Logger:        logger,
		})
		if err != nil {
			return fmt.Errorf("building cluster coordinator: %w", err)
		}
		coord.Start()
		defer func() {
			closeCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := coord.Close(closeCtx); err != nil {
				logger.Error("closing cluster coordinator", "err", err)
			}
		}()
		st := coord.Status()
		logger.Info("cluster coordinator up",
			"workers", len(st.Members), "healthy", st.Healthy)
		handlerOpts = append(handlerOpts, server.WithCluster(coord))
	}
	if *follow != "" {
		fol, err := replica.New(replica.Options{
			Leader:   *follow,
			Store:    reg.Store(),
			Logger:   logger,
			Registry: obs.Default(),
			Tracer:   tracer,
		})
		if err != nil {
			return fmt.Errorf("building follower replica: %w", err)
		}
		folCtx, folCancel := context.WithCancel(ctx)
		folDone := make(chan struct{})
		go func() {
			defer close(folDone)
			if err := fol.Run(folCtx); err != nil && !errors.Is(err, context.Canceled) {
				logger.Error("replica tail stopped", "err", err)
			}
		}()
		defer func() {
			folCancel()
			<-folDone
		}()
		logger.Info("following leader", "leader", *follow, "max_lag", *maxReplicaLag)
		handlerOpts = append(handlerOpts, server.WithFollower(fol, *follow, *maxReplicaLag))
	}

	// Continuous profiling: an always-on ring of short CPU captures and
	// heap/goroutine snapshots served at /debug/profiles. -profile-every 0
	// leaves the default passive ring in place (empty listing).
	if *profileEvery > 0 {
		cpu := *profileCPU
		if cpu <= 0 {
			cpu = -1 // profile.New: negative disables CPU captures, 0 means default
		}
		ring := profile.New(profile.Config{
			Interval:    *profileEvery,
			CPUDuration: cpu,
			Logger:      logger,
			Metrics:     obs.Default(),
		})
		go ring.Run(ctx)
		logger.Info("continuous profiling on",
			"every", ring.Interval(), "cpu", ring.CPUDuration())
		handlerOpts = append(handlerOpts, server.WithProfiles(ring))
	}

	// Fleet collector: static -fleet-members plus, in coordinator mode,
	// the live cluster membership. Serves /metrics/fleet + /debug/fleet.
	if *fleetMembers != "" || coord != nil {
		selfRole := "leader"
		switch {
		case *follow != "":
			selfRole = "follower"
		case coord != nil:
			selfRole = "coordinator"
		}
		fleetCfg := fleet.Config{
			Members:     parseFleetMembers(*fleetMembers),
			Interval:    *fleetEvery,
			Logger:      logger,
			Metrics:     obs.Default(),
			SelfName:    *fleetSelf,
			SelfRole:    selfRole,
			SelfMetrics: obs.Default(),
		}
		if coord != nil {
			c := coord
			fleetCfg.Source = func() []fleet.Member {
				var out []fleet.Member
				for _, m := range c.Status().Members {
					out = append(out, fleet.Member{Name: m.Instance, URL: m.URL, Role: "worker"})
				}
				return out
			}
		}
		collector := fleet.New(fleetCfg)
		go collector.Run(ctx)
		logger.Info("fleet collector up",
			"static_members", len(fleetCfg.Members), "coordinator_sourced", coord != nil,
			"every", collector.Interval())
		handlerOpts = append(handlerOpts, server.WithFleet(collector))
	}

	// Admission control: on when -tenants-file names a registry or any
	// admission tuning flag was given explicitly. Off (the default) the
	// handler chain is untouched — no auth, no limits, no per-request
	// overhead — and model names stay unprefixed in the store.
	admissionOn := *tenantsFile != ""
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "admission-rps", "admission-burst", "admission-rows", "admission-row-burst",
			"admission-batch-rows", "admission-batch-row-burst", "admission-inflight",
			"admission-wait", "max-inflight", "ingest-queue":
			admissionOn = true
		}
	})
	if admissionOn {
		ctrl, err := admission.New(admission.Config{
			TenantsFile: *tenantsFile,
			Defaults: admission.Limits{
				RequestsPerSecond:  *admissionRPS,
				RequestBurst:       *admissionBurst,
				RowsPerSecond:      *admissionRows,
				RowBurst:           *admissionRowB,
				BatchRowsPerSecond: *admissionBatch,
				BatchRowBurst:      *admissionBatchB,
				MaxInFlight:        *admissionInflight,
			},
			GlobalInFlight: *maxInflight,
			IngestQueue:    *ingestQueue,
			MaxWait:        *admissionWait,
			Logger:         logger,
			Metrics:        obs.Default(),
		})
		if err != nil {
			return fmt.Errorf("building admission controller: %w", err)
		}
		go ctrl.Run(ctx) // tenant-file mtime polling
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					if err := ctrl.Reload(); err != nil {
						logger.Error("tenant registry reload failed, keeping last-good", "err", err)
					} else {
						logger.Info("tenant registry reloaded on SIGHUP")
					}
				}
			}
		}()
		logger.Info("admission control on",
			"tenants_file", *tenantsFile, "global_inflight", *maxInflight,
			"max_wait", *admissionWait)
		handlerOpts = append(handlerOpts, server.WithAdmission(ctrl))
	}

	// baseCancel ends the long-lived replication streams (they select on
	// the request context) so a graceful Shutdown can actually drain:
	// followers reconnect and resume from their applied seq.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	srv := &http.Server{
		Handler:           server.Handler(reg, handlerOpts...),
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("rrserve listening", "addr", ln.Addr().String())
	if notifyListening != nil {
		notifyListening("main", ln.Addr().String())
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv, err = startDebugServer(*debugAddr, logger)
		if err != nil {
			ln.Close()
			return err
		}
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "timeout", drainTimeout)
	baseCancel()
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err = srv.Shutdown(drainCtx)
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	if err != nil {
		logger.Error("drain incomplete, closing remaining connections", "err", err)
		_ = srv.Close()
		return err
	}
	logger.Info("drained cleanly")
	return nil
}

// parseFleetMembers parses the -fleet-members list: comma-separated
// entries, each "url" or "name=url".
func parseFleetMembers(raw string) []fleet.Member {
	var out []fleet.Member
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m := fleet.Member{URL: part}
		if name, url, ok := strings.Cut(part, "="); ok {
			m.Name, m.URL = strings.TrimSpace(name), strings.TrimSpace(url)
		}
		out = append(out, m)
	}
	return out
}

// startDebugServer serves net/http/pprof on its own listener so
// profiling never shares a port (or an exposure surface) with the
// public API.
func startDebugServer(addr string, logger *slog.Logger) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	logger.Info("pprof debug listener up", "addr", ln.Addr().String())
	if notifyListening != nil {
		notifyListening("debug", ln.Addr().String())
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("debug listener failed", "err", err)
		}
	}()
	return srv, nil
}
