// Command rrserve runs the Ratio Rules HTTP service: mine models from
// JSON row sets and query them for reconstruction, forecasting and outlier
// detection.
//
// Usage:
//
//	rrserve -addr :8080
//
// Example session:
//
//	curl -X POST localhost:8080/v1/rules -d '{"name":"sales","rows":[[1,2],[2,4],[3,6]]}'
//	curl -X POST localhost:8080/v1/rules/sales/fill -d '{"record":[4,0],"holes":[1]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"ratiorules/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(server.NewRegistry()),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	fmt.Printf("rrserve listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
