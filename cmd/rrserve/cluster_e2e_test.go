package main

// End-to-end cluster test over real processes' worth of wiring: two
// rrserve -node workers and one coordinator rrserve, all through run()
// on ephemeral ports. Rows ingested through the public API must spread
// across both nodes, merge back into one published model, and a late
// third node must be able to announce itself in via -coordinator.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestClusterEndToEnd(t *testing.T) {
	n1, stopN1 := startServe(t, "-node", "-addr", "127.0.0.1:0")
	n2, stopN2 := startServe(t, "-node", "-addr", "127.0.0.1:0")
	w1 := "http://" + n1["node"]
	w2 := "http://" + n2["node"]

	co, stopCo := startServe(t, "-addr", "127.0.0.1:0",
		"-cluster-workers", w1+","+w2,
		"-cluster-chunk", "32",
		// Park the background merge loop; the test drives merges.
		"-cluster-pull-every", "1h",
		"-republish-rows", "1000000")
	base := "http://" + co["main"]

	// Both workers healthy in the admin view and in readyz.
	var st struct {
		Members []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"members"`
		Healthy int `json:"healthy"`
	}
	_, body := get(t, base+"/v1/cluster/status")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status decode: %v (%s)", err, body)
	}
	if st.Healthy != 2 || len(st.Members) != 2 {
		t.Fatalf("cluster status = %s", body)
	}
	if code, rz := get(t, base+"/readyz"); code != 200 || !strings.Contains(rz, `"cluster"`) {
		t.Fatalf("readyz = %d: %s", code, rz)
	}

	// Ingest 600 rows through the public endpoint; every row must ack.
	var rows strings.Builder
	for i := 1; i <= 600; i++ {
		fmt.Fprintf(&rows, "[%d,%d,%d]\n", i, 2*i, 3*i)
	}
	resp, err := http.Post(base+"/v1/rules/clust/ingest", "application/x-ndjson",
		strings.NewReader(rows.String()))
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(resp.Body)
	acks, lastCount := 0, 0
	var done *struct {
		Rows     int `json:"rows"`
		Accepted int `json:"accepted"`
		Errors   int `json:"errors"`
		Count    int `json:"count"`
	}
	for dec.More() {
		var line struct {
			Index *int `json:"index"`
			Count int  `json:"count"`
			Done  *struct {
				Rows     int `json:"rows"`
				Accepted int `json:"accepted"`
				Errors   int `json:"errors"`
				Count    int `json:"count"`
			} `json:"done"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("ack decode after %d acks: %v", acks, err)
		}
		if line.Done != nil {
			done = line.Done
			break
		}
		if line.Index == nil || *line.Index != acks {
			t.Fatalf("ack %d out of order: %+v", acks, line)
		}
		acks++
		lastCount = line.Count
	}
	resp.Body.Close()
	if acks != 600 || lastCount != 600 {
		t.Fatalf("acks = %d, last count = %d", acks, lastCount)
	}
	if done == nil || done.Accepted != 600 || done.Errors != 0 {
		t.Fatalf("done = %+v", done)
	}

	// The rows actually sharded: each worker holds some, neither all.
	for _, w := range []string{w1, w2} {
		var shards struct {
			Shards []struct {
				Name string `json:"name"`
				Rows int    `json:"rows"`
			} `json:"shards"`
		}
		_, sbody := get(t, w+"/v1/cluster/shards")
		if err := json.Unmarshal([]byte(sbody), &shards); err != nil {
			t.Fatalf("shards decode: %v", err)
		}
		if len(shards.Shards) != 1 || shards.Shards[0].Rows == 0 || shards.Shards[0].Rows == 600 {
			t.Fatalf("worker %s shard spread: %s", w, sbody)
		}
	}

	// Force the merge: the model publishes with every row, exactly once.
	if code, pub := postJSON(t, base+"/v1/cluster/republish/clust", ""); code != 200 ||
		!strings.Contains(pub, `"trained_rows":600`) {
		t.Fatalf("republish = %d: %s", code, pub)
	}
	if code, _ := get(t, base+"/v1/rules/clust"); code != 200 {
		t.Fatal("merged model not served")
	}

	// A third node announces itself via -coordinator and joins.
	n3, stopN3 := startServe(t, "-node", "-addr", "127.0.0.1:0", "-coordinator", base)
	w3 := "http://" + n3["node"]
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, base+"/v1/cluster/status")
		if strings.Contains(body, w3) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never joined: %s", w3, body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Shut the coordinator down first (its close-time merge pulls from
	// the workers), then the nodes.
	if err := stopCo(); err != nil {
		t.Fatalf("coordinator shutdown: %v", err)
	}
	for _, stop := range []func() error{stopN1, stopN2, stopN3} {
		if err := stop(); err != nil {
			t.Fatalf("node shutdown: %v", err)
		}
	}
}
