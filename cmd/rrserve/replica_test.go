package main

// End-to-end replication acceptance: a follower rrserve process tails a
// leader rrserve process over the real wire, serves byte-identical
// bodies and ETags, survives a leader kill/restart, and resumes from
// its own checkpointed seq after a restart of its own — no duplicate
// replay, no spurious snapshot bootstrap.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// tryGet is the non-fatal probe used while polling: unlike get it
// reports dial errors (a dead leader) instead of failing the test.
func tryGet(url string) (int, string, http.Header, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, string(body), resp.Header, nil
}

// getWithETag fetches url and returns (ETag, body), failing on non-200.
func getWithETag(t *testing.T, url string) (string, string) {
	t.Helper()
	code, body, hdr, err := tryGet(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if code != 200 {
		t.Fatalf("GET %s = %d: %s", url, code, body)
	}
	return hdr.Get("ETag"), body
}

// versionSummary fetches /versions and returns (head, retained count).
func versionSummary(t *testing.T, base, name string) (int, int) {
	t.Helper()
	var vers struct {
		Head     int               `json:"head"`
		Versions []json.RawMessage `json:"versions"`
	}
	_, body := get(t, base+"/v1/rules/"+name+"/versions")
	if err := json.Unmarshal([]byte(body), &vers); err != nil {
		t.Fatalf("versions decode: %v (%s)", err, body)
	}
	return vers.Head, len(vers.Versions)
}

func TestFollowerEndToEnd(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()

	// Boot #1 of the leader; mine a model.
	lAddrs, lShutdown := startServe(t, "-addr", "127.0.0.1:0", "-data-dir", leaderDir)
	leaderAddr := lAddrs["main"]
	lbase := "http://" + leaderAddr
	if code, body := postJSON(t, lbase+"/v1/rules",
		`{"name":"a","rows":[[1,2],[2,4],[3,6],[4,8],[5,10]]}`); code != 201 {
		t.Fatalf("mine a = %d: %s", code, body)
	}
	wantAEtag, wantA := getWithETag(t, lbase+"/v1/rules/a")

	// Boot #1 of the follower: its own data dir (never the leader's —
	// the store flock forbids sharing), tailing the leader's WAL.
	fAddrs, fShutdown := startServe(t, "-addr", "127.0.0.1:0",
		"-data-dir", followerDir, "-follow", lbase, "-max-replica-lag", "1m")
	fbase := "http://" + fAddrs["main"]

	waitFor(t, "follower catch-up", func() bool {
		code, _, _, err := tryGet(fbase + "/v1/rules/a")
		return err == nil && code == 200
	})

	// Byte-identical serving: same body, same ETag, at the same seq.
	gotAEtag, gotA := getWithETag(t, fbase+"/v1/rules/a")
	if gotAEtag != wantAEtag {
		t.Errorf("follower ETag %q != leader ETag %q", gotAEtag, wantAEtag)
	}
	if gotA != wantA {
		t.Errorf("follower body differs from leader (%d vs %d bytes)", len(gotA), len(wantA))
	}

	// The follower refuses writes with the stable envelope code and
	// points clients at the leader.
	if code, body := postJSON(t, fbase+"/v1/rules",
		`{"name":"x","rows":[[1,1],[2,2],[3,3]]}`); code != 403 ||
		!strings.Contains(body, `"read_only"`) || !strings.Contains(body, lbase) {
		t.Fatalf("mine on follower = %d: %s", code, body)
	}

	// Readiness reports the follower role and, once synced, stays ready.
	waitFor(t, "follower synced readyz", func() bool {
		code, body, _, err := tryGet(fbase + "/readyz")
		return err == nil && code == 200 &&
			strings.Contains(body, `"role":"follower"`) &&
			strings.Contains(body, `"synced":true`)
	})

	// Kill the leader. The follower keeps serving consistent reads.
	if err := lShutdown(); err != nil {
		t.Fatalf("leader shutdown: %v", err)
	}
	if etag, body := getWithETag(t, fbase+"/v1/rules/a"); etag != wantAEtag || body != wantA {
		t.Error("follower reads changed while the leader was down")
	}

	// Restart the leader on the same address and data dir; mine a second
	// model. The follower reconnects by itself and tails the new write.
	_, lShutdown = startServe(t, "-addr", leaderAddr, "-data-dir", leaderDir)
	if code, body := postJSON(t, lbase+"/v1/rules",
		`{"name":"b","rows":[[1,3],[2,6],[3,9],[4,12],[5,15]]}`); code != 201 {
		t.Fatalf("mine b = %d: %s", code, body)
	}
	wantBEtag, wantB := getWithETag(t, lbase+"/v1/rules/b")
	waitFor(t, "follower tails the restarted leader", func() bool {
		code, _, _, err := tryGet(fbase + "/v1/rules/b")
		return err == nil && code == 200
	})
	if etag, body := getWithETag(t, fbase+"/v1/rules/b"); etag != wantBEtag || body != wantB {
		t.Error("follower model b differs from the restarted leader")
	}

	// No duplicate replay across the reconnect: model a still has exactly
	// one retained version on the follower, head 1, same as the leader.
	if head, n := versionSummary(t, fbase, "a"); head != 1 || n != 1 {
		t.Errorf("follower a history after leader restart: head %d, %d versions; want 1, 1", head, n)
	}

	// Restart the follower cold: its durable store resumes from the
	// checkpointed applied seq — no re-replay, no snapshot bootstrap.
	if err := fShutdown(); err != nil {
		t.Fatalf("follower shutdown: %v", err)
	}
	fAddrs, fShutdown = startServe(t, "-addr", "127.0.0.1:0",
		"-data-dir", followerDir, "-follow", lbase, "-max-replica-lag", "1m")
	fbase = "http://" + fAddrs["main"]
	waitFor(t, "restarted follower serves", func() bool {
		code, body, _, err := tryGet(fbase + "/readyz")
		return err == nil && code == 200 && strings.Contains(body, `"synced":true`)
	})
	for name, want := range map[string][2]string{
		"a": {wantAEtag, wantA}, "b": {wantBEtag, wantB},
	} {
		if etag, body := getWithETag(t, fbase+"/v1/rules/"+name); etag != want[0] || body != want[1] {
			t.Errorf("restarted follower model %s differs from leader", name)
		}
	}
	if head, n := versionSummary(t, fbase, "a"); head != 1 || n != 1 {
		t.Errorf("restarted follower a history: head %d, %d versions; want 1, 1 (duplicate replay?)", head, n)
	}

	// The replica surfaced its position in /metrics: applied seq 2 (two
	// committed leader events), zero snapshot bootstraps anywhere in this
	// whole exercise — every catch-up rode the event log.
	if code, metrics := get(t, fbase+"/metrics"); code != 200 {
		t.Fatalf("metrics = %d", code)
	} else {
		for _, want := range []string{
			"rr_replica_applied_seq 2",
			"rr_replica_connected 1",
			"rr_replica_snapshot_bootstraps_total 0",
		} {
			if !strings.Contains(metrics, want) {
				t.Errorf("follower metrics missing %q", want)
			}
		}
	}

	if err := fShutdown(); err != nil {
		t.Fatalf("follower shutdown #2: %v", err)
	}
	if err := lShutdown(); err != nil {
		t.Fatalf("leader shutdown #2: %v", err)
	}
}

// TestFollowerFlagConflicts pins the flag validation: a follower cannot
// simultaneously be a cluster node or coordinator.
func TestFollowerFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-follow", "http://leader:8080", "-node"},
		{"-follow", "http://leader:8080", "-cluster-workers", "http://w1:8081"},
	} {
		if err := run(t.Context(), args); err == nil ||
			!strings.Contains(err.Error(), "mutually exclusive") {
			t.Errorf("run(%v) = %v, want a mutually-exclusive flag error", args, err)
		}
	}
}
