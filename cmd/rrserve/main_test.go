package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServe runs the server on ephemeral ports and returns the bound
// addresses plus a shutdown func that cancels and waits for run.
func startServe(t *testing.T, args ...string) (addrs map[string]string, shutdown func() error) {
	t.Helper()
	addrCh := make(chan [2]string, 4)
	notifyListening = func(name, addr string) { addrCh <- [2]string{name, addr} }
	t.Cleanup(func() { notifyListening = nil })

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args) }()

	addrs = make(map[string]string)
	wantListeners := 1
	for _, a := range args {
		if strings.Contains(a, "debug-addr") {
			wantListeners = 2
		}
	}
	for len(addrs) < wantListeners {
		select {
		case na := <-addrCh:
			addrs[na[0]] = na[1]
		case err := <-errCh:
			t.Fatalf("run exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for listeners")
		}
	}
	return addrs, func() error {
		cancel()
		select {
		case err := <-errCh:
			return err
		case <-time.After(drainTimeout + 5*time.Second):
			t.Fatal("run did not return after cancel")
			return nil
		}
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestGracefulShutdown boots the full server, checks it serves, then
// cancels the signal context and expects a clean drain.
func TestGracefulShutdown(t *testing.T) {
	addrs, shutdown := startServe(t, "-addr", "127.0.0.1:0")
	base := "http://" + addrs["main"]
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "rr_http_requests_total") {
		t.Fatalf("metrics = %d, body %q", code, body)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The socket must actually be released.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

// TestDebugListener checks the opt-in pprof side listener serves the
// index on its own port and not on the API port.
func TestDebugListener(t *testing.T) {
	addrs, shutdown := startServe(t, "-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	if code, body := get(t, "http://"+addrs["debug"]+"/debug/pprof/"); code != 200 ||
		!strings.Contains(body, "profile") {
		t.Fatalf("pprof index = %d, body %.80q", code, body)
	}
	if code, _ := get(t, "http://"+addrs["main"]+"/debug/pprof/"); code == 200 {
		t.Fatal("pprof exposed on the public API listener")
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("bad addr accepted")
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-debug-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("bad debug addr accepted")
	}
}
