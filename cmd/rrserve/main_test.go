package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// startServe runs the server on ephemeral ports and returns the bound
// addresses plus a shutdown func that cancels and waits for run.
func startServe(t *testing.T, args ...string) (addrs map[string]string, shutdown func() error) {
	t.Helper()
	addrCh := make(chan [2]string, 4)
	notifyListening = func(name, addr string) { addrCh <- [2]string{name, addr} }
	t.Cleanup(func() { notifyListening = nil })

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args) }()

	addrs = make(map[string]string)
	wantListeners := 1
	for _, a := range args {
		if strings.Contains(a, "debug-addr") {
			wantListeners = 2
		}
	}
	for len(addrs) < wantListeners {
		select {
		case na := <-addrCh:
			addrs[na[0]] = na[1]
		case err := <-errCh:
			t.Fatalf("run exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for listeners")
		}
	}
	return addrs, func() error {
		cancel()
		select {
		case err := <-errCh:
			return err
		case <-time.After(drainTimeout + 5*time.Second):
			t.Fatal("run did not return after cancel")
			return nil
		}
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestGracefulShutdown boots the full server, checks it serves, then
// cancels the signal context and expects a clean drain.
func TestGracefulShutdown(t *testing.T) {
	addrs, shutdown := startServe(t, "-addr", "127.0.0.1:0")
	base := "http://" + addrs["main"]
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "rr_http_requests_total") {
		t.Fatalf("metrics = %d, body %q", code, body)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The socket must actually be released.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

// TestDebugListener checks the opt-in pprof side listener serves the
// index on its own port and not on the API port.
func TestDebugListener(t *testing.T) {
	addrs, shutdown := startServe(t, "-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	if code, body := get(t, "http://"+addrs["debug"]+"/debug/pprof/"); code != 200 ||
		!strings.Contains(body, "profile") {
		t.Fatalf("pprof index = %d, body %.80q", code, body)
	}
	if code, _ := get(t, "http://"+addrs["main"]+"/debug/pprof/"); code == 200 {
		t.Fatal("pprof exposed on the public API listener")
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("bad addr accepted")
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-debug-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("bad debug addr accepted")
	}
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func putBody(t *testing.T, url, body string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// mustJSONEqual decodes both documents and compares them structurally.
func mustJSONEqual(t *testing.T, label, a, b string) {
	t.Helper()
	var va, vb any
	if err := json.Unmarshal([]byte(a), &va); err != nil {
		t.Fatalf("%s: first doc: %v", label, err)
	}
	if err := json.Unmarshal([]byte(b), &vb); err != nil {
		t.Fatalf("%s: second doc: %v", label, err)
	}
	if !reflect.DeepEqual(va, vb) {
		t.Errorf("%s: documents differ\n  before: %.200s\n  after:  %.200s", label, a, b)
	}
}

// TestKillRecoverRoundTrip is the persistence acceptance check: mine
// models over HTTP into a -data-dir, restart the whole server cold —
// with a torn final WAL record injected, as a crash mid-append would
// leave — and require identical served Rules JSON, intact version
// history, working rollback, and nonzero store metrics.
func TestKillRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Boot #1: mine two models, re-install one (making a v2).
	addrs, shutdown := startServe(t, "-addr", "127.0.0.1:0", "-data-dir", dir)
	base := "http://" + addrs["main"]
	if code, body := postJSON(t, base+"/v1/rules",
		`{"name":"a","rows":[[1,2],[2,4],[3,6],[4,8],[5,10]]}`); code != 201 {
		t.Fatalf("mine a = %d: %s", code, body)
	}
	if code, body := postJSON(t, base+"/v1/rules",
		`{"name":"b","rows":[[1,3],[2,6],[3,9],[4,12],[5,15]]}`); code != 201 {
		t.Fatalf("mine b = %d: %s", code, body)
	}
	_, rulesA := get(t, base+"/v1/rules/a")
	if code := putBody(t, base+"/v1/rules/a", rulesA); code != 200 {
		t.Fatalf("re-install a = %d", code)
	}
	codeA, wantA := get(t, base+"/v1/rules/a")
	codeB, wantB := get(t, base+"/v1/rules/b")
	if codeA != 200 || codeB != 200 {
		t.Fatalf("pre-restart GETs: %d, %d", codeA, codeB)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown #1: %v", err)
	}

	// Crash injection: a torn record at the WAL tail (a length header
	// promising more payload than was ever written).
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 0, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Boot #2: cold recovery must truncate the torn tail and serve the
	// exact same models.
	addrs, shutdown = startServe(t, "-addr", "127.0.0.1:0", "-data-dir", dir)
	base = "http://" + addrs["main"]
	codeA, gotA := get(t, base+"/v1/rules/a")
	codeB, gotB := get(t, base+"/v1/rules/b")
	if codeA != 200 || codeB != 200 {
		t.Fatalf("post-restart GETs: %d, %d", codeA, codeB)
	}
	mustJSONEqual(t, "model a", wantA, gotA)
	mustJSONEqual(t, "model b", wantB, gotB)

	// Version history survives: a has v1+v2, b has v1.
	var vers struct {
		Head     int `json:"head"`
		Versions []struct {
			Version int `json:"version"`
		} `json:"versions"`
	}
	_, versBody := get(t, base+"/v1/rules/a/versions")
	if err := json.Unmarshal([]byte(versBody), &vers); err != nil {
		t.Fatalf("versions decode: %v (%s)", err, versBody)
	}
	if vers.Head != 2 || len(vers.Versions) != 2 {
		t.Fatalf("recovered history = %+v, want head 2 with 2 versions", vers)
	}

	// Rollback works against the recovered store.
	if code, body := postJSON(t, base+"/v1/rules/a/rollback", `{"version":1}`); code != 200 ||
		!strings.Contains(body, `"version":3`) {
		t.Fatalf("rollback after recovery = %d: %s", code, body)
	}

	// The store surfaced its work in /metrics.
	if code, metrics := get(t, base+"/metrics"); code != 200 {
		t.Fatalf("metrics = %d", code)
	} else {
		for _, want := range []string{
			"rr_store_torn_records_total 1",
			"rr_store_models 2",
			"rr_store_wal_appends_total{op=\"put\"}",
		} {
			if !strings.Contains(metrics, want) {
				t.Errorf("metrics missing %q", want)
			}
		}
		if strings.Contains(metrics, "rr_store_wal_appends_total{op=\"put\"} 0") {
			t.Error("rr_store_wal_appends_total{op=\"put\"} is zero")
		}
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown #2: %v", err)
	}
}
