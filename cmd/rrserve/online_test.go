package main

// End-to-end acceptance test for the live-ingest subsystem: boot the
// real binary entrypoint against a -data-dir, stream NDJSON rows over
// HTTP, and require the full loop — background republish into the
// durable store, GE-gated rejection of a hijacking burst, and stream
// resumption from the shutdown checkpoint after a cold restart.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// ingestNDJSON posts rows to the ingest endpoint and returns the
// response status plus raw NDJSON body.
func ingestNDJSON(t *testing.T, url string, rows [][]float64) (int, string) {
	t.Helper()
	var b strings.Builder
	for _, row := range rows {
		doc, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(doc)
		b.WriteByte('\n')
	}
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	if _, err := fmt.Fprint(&body, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// streamStatus fetches GET /v1/rules/{name}/stream.
type streamStatus struct {
	Width       int     `json:"width"`
	Decay       float64 `json:"decay"`
	Rows        int     `json:"rows"`
	Pending     int     `json:"pending"`
	Republishes int     `json:"republishes"`
	Promotions  int     `json:"promotions"`
	Rejections  int     `json:"rejections"`
	LastVersion int     `json:"last_version"`
}

func getStreamStatus(t *testing.T, base string) (streamStatus, int) {
	t.Helper()
	code, body := get(t, base+"/v1/rules/live/stream")
	var st streamStatus
	if code == 200 {
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("stream status decode: %v (%s)", err, body)
		}
	}
	return st, code
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// quiesce waits until the background republisher stops making progress
// on the live stream (no queued wake left to consume pending rows).
func quiesce(t *testing.T, base string) streamStatus {
	t.Helper()
	prev, _ := getStreamStatus(t, base)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(150 * time.Millisecond)
		cur, _ := getStreamStatus(t, base)
		if cur == prev {
			return cur
		}
		prev = cur
	}
	t.Fatal("republisher never quiesced")
	return prev
}

func etagOf(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/rules/live")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return ""
	}
	return resp.Header.Get("ETag")
}

// onlineRow mirrors the clean stream family: y = 2x with drifting x.
func onlineRow(i int) []float64 {
	x := 1 + float64(i%17)/4
	return []float64{x, 2 * x}
}

// antiOnlineRow inverts the correlation: a hijacking data source.
func antiOnlineRow(i int) []float64 {
	x := 1 + float64(i%17)/4
	return []float64{x, -2 * x}
}

// TestOnlineIngestEndToEnd drives the full online lifecycle through a
// real server process loop (see ISSUE acceptance criteria).
func TestOnlineIngestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	boot := func() (string, func() error) {
		addrs, shutdown := startServe(t, "-addr", "127.0.0.1:0",
			"-data-dir", dir, "-republish-rows", "40")
		return "http://" + addrs["main"], shutdown
	}

	// Boot #1: stream clean decayed rows until the row trigger
	// republishes and the model shows up in the versioned store.
	base, shutdown := boot()
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = onlineRow(i)
	}
	if code, body := ingestNDJSON(t, base+"/v1/rules/live/ingest?decay=0.5", rows); code != 200 ||
		!strings.Contains(body, `"done"`) {
		t.Fatalf("clean ingest = %d: %.200s", code, body)
	}
	waitFor(t, "first promotion", func() bool {
		st, code := getStreamStatus(t, base)
		return code == 200 && st.Promotions >= 1
	})
	settled := quiesce(t, base)
	if settled.Rows != 200 || settled.Decay != 0.5 {
		t.Fatalf("settled stream = %+v, want 200 rows at decay 0.5", settled)
	}
	if settled.Rejections != 0 {
		t.Fatalf("clean data was rejected: %+v", settled)
	}
	etagBefore := etagOf(t, base)
	if etagBefore == "" {
		t.Fatal("no model served after clean republishes")
	}

	// Hijack burst: enough anti-correlated rows to cross the trigger.
	// With decay 0.5 the candidate re-mine fits the burst, but the
	// reservoir holdout still remembers 200 clean rows — the GE gate
	// must refuse and the served model must not move.
	anti := make([][]float64, 40)
	for i := range anti {
		anti[i] = antiOnlineRow(i)
	}
	if code, _ := ingestNDJSON(t, base+"/v1/rules/live/ingest", anti); code != 200 {
		t.Fatalf("anti ingest = %d", code)
	}
	waitFor(t, "GE-gate rejection", func() bool {
		st, code := getStreamStatus(t, base)
		return code == 200 && st.Rejections >= 1
	})
	hijacked := quiesce(t, base)
	if etagAfter := etagOf(t, base); etagAfter != etagBefore {
		t.Fatalf("served model moved across a rejected burst: %s -> %s", etagBefore, etagAfter)
	}
	if code, metrics := get(t, base+"/metrics"); code != 200 {
		t.Fatalf("metrics = %d", code)
	} else {
		// Counter values are not asserted exactly: rrserve shares the
		// process-wide obs.Default() registry, so repeated in-process
		// boots (go test -count=2) accumulate.
		for _, want := range []string{
			"rr_online_ge_gate_rejections_total",
			`rr_online_republishes_total{result="rejected"}`,
			`rr_online_rows_ingested_total{result="ok"}`,
		} {
			if !strings.Contains(metrics, want) {
				t.Errorf("metrics missing %q", want)
			}
		}
		if strings.Contains(metrics, "rr_online_ge_gate_rejections_total 0") {
			t.Error("rejection counter still zero after refused burst")
		}
	}

	// Cold restart. Graceful shutdown checkpoints the stream beside the
	// model store; boot #2 must resume it with counters intact.
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown #1: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "online", "live.stream.json")); err != nil {
		t.Fatalf("stream checkpoint not written: %v", err)
	}

	base, shutdown = boot()
	resumed, code := getStreamStatus(t, base)
	if code != 200 {
		t.Fatalf("stream not resumed after restart: %d", code)
	}
	if resumed.Rows != hijacked.Rows || resumed.Decay != 0.5 ||
		resumed.Rejections != hijacked.Rejections || resumed.Promotions != hijacked.Promotions {
		t.Fatalf("resumed stream %+v does not match checkpointed %+v", resumed, hijacked)
	}
	if resumed.Pending != 0 {
		t.Fatalf("resumed stream has phantom pending rows: %+v", resumed)
	}

	// The resumed stream keeps mining: clean rows wash out the burst
	// (decay 0.5) and the next republish promotes a fresh version.
	more := make([][]float64, 40)
	for i := range more {
		more[i] = onlineRow(i)
	}
	if code, _ := ingestNDJSON(t, base+"/v1/rules/live/ingest", more); code != 200 {
		t.Fatalf("post-restart ingest = %d", code)
	}
	waitFor(t, "post-restart promotion", func() bool {
		st, code := getStreamStatus(t, base)
		return code == 200 && st.Promotions > resumed.Promotions
	})
	st, _ := getStreamStatus(t, base)
	if st.Rows != resumed.Rows+40 {
		t.Fatalf("post-restart rows = %d, want %d", st.Rows, resumed.Rows+40)
	}
	if st.LastVersion <= hijacked.LastVersion {
		t.Fatalf("promotion did not advance the store version: %+v vs %+v", st, hijacked)
	}
	if etag := etagOf(t, base); etag == etagBefore || etag == "" {
		t.Fatalf("served ETag %q did not advance past %q", etag, etagBefore)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown #2: %v", err)
	}
}
