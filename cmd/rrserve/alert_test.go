package main

// End-to-end acceptance for the model-quality monitor (see ISSUE.md):
// boot the real entrypoint, feed a live stream clean rows, then poison
// it with a sustained anti-correlated drift. The promotion gate is
// deliberately disarmed (-ge-slack 1e12) so the drift actually takes
// over the served model — the alert engine, not the gate, must catch
// it. Phase 1 proves the regression alert fires and is visible on
// every surface (/debug/alerts, /v1/rules/{name}/health, /readyz,
// /metrics); phase 2 re-runs the scenario with -auto-rollback and
// proves the served model snaps back to a clean retained version.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// modelHealthView mirrors the GET /v1/rules/{name}/health body fields
// the tests assert on.
type modelHealthView struct {
	Status        string  `json:"status"`
	Samples       int     `json:"samples"`
	Firing        int     `json:"firing"`
	AutoRollbacks int     `json:"auto_rollbacks"`
	CurrentGE     float64 `json:"current_ge"`
	BaselineGE    float64 `json:"baseline_ge"`
}

func getModelHealth(t *testing.T, base string) (modelHealthView, int) {
	t.Helper()
	code, body := get(t, base+"/v1/rules/live/health")
	var h modelHealthView
	if code == 200 {
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("health decode: %v (%s)", err, body)
		}
	}
	return h, code
}

func getAlertsFiring(t *testing.T, base string) int {
	t.Helper()
	code, body := get(t, base+"/debug/alerts")
	if code != 200 {
		t.Fatalf("debug/alerts = %d", code)
	}
	var out struct {
		Firing int `json:"firing"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("debug/alerts decode: %v (%s)", err, body)
	}
	return out.Firing
}

// driftScenario boots rrserve with the GE gate disarmed and continuous
// eval ticks, streams clean rows until the monitor has a baseline, then
// floods anti-correlated rows so the served model degrades. Returns the
// base URL and shutdown func with the drift already ingested.
func driftScenario(t *testing.T, extra ...string) (string, func() error) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0", "-data-dir", t.TempDir(),
		"-republish-rows", "40", "-ge-slack", "1e12",
		"-ge-eval-every", "20ms", "-alert-cooldown", "0",
	}, extra...)
	addrs, shutdown := startServe(t, args...)
	base := "http://" + addrs["main"]

	// Clean phase: y = 2x rows until the model publishes and the GE
	// ring holds a full regression baseline (12 baseline + 4 recent).
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = onlineRow(i)
	}
	if code, body := ingestNDJSON(t, base+"/v1/rules/live/ingest?decay=0.9", rows); code != 200 ||
		!strings.Contains(body, `"done"`) {
		t.Fatalf("clean ingest = %d: %.200s", code, body)
	}
	waitFor(t, "clean promotion", func() bool {
		st, code := getStreamStatus(t, base)
		return code == 200 && st.Promotions >= 1
	})
	waitFor(t, "GE baseline", func() bool {
		h, code := getModelHealth(t, base)
		return code == 200 && h.Samples >= 16 && h.Firing == 0
	})

	// Drift phase: a sustained anti-correlated takeover. With the gate
	// disarmed the next re-mine promotes a poisoned model; eval ticks
	// score it against the mostly-clean holdout and GE jumps.
	anti := make([][]float64, 120)
	for i := range anti {
		anti[i] = antiOnlineRow(i)
	}
	if code, _ := ingestNDJSON(t, base+"/v1/rules/live/ingest", anti); code != 200 {
		t.Fatalf("anti ingest = %d", code)
	}
	return base, shutdown
}

// fillAt asks the served model to reconstruct y for x=3; a clean
// y = 2x model answers ~6, a poisoned y = -2x model answers negative.
func fillAt(t *testing.T, base string) float64 {
	t.Helper()
	resp := struct {
		Filled []float64 `json:"filled"`
	}{}
	code, body := post(t, base+"/v1/rules/live/fill", `{"record":[3,0],"holes":[1]}`)
	if code != 200 {
		t.Fatalf("fill = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil || len(resp.Filled) != 2 {
		t.Fatalf("fill decode: %v (%s)", err, body)
	}
	return resp.Filled[1]
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, readAll(t, resp)
}

// TestDriftAlertFires: without auto-rollback the degraded model keeps
// serving, but the regression alert fires and every observability
// surface says so.
func TestDriftAlertFires(t *testing.T) {
	base, shutdown := driftScenario(t)

	waitFor(t, "firing alert", func() bool {
		return getAlertsFiring(t, base) >= 1
	})

	h, code := getModelHealth(t, base)
	if code != 200 || h.Status != "degraded" || h.Firing < 1 {
		t.Fatalf("model health after drift = %+v (%d), want degraded with firing alerts", h, code)
	}
	if h.AutoRollbacks != 0 {
		t.Fatalf("rollbacks happened without -auto-rollback: %+v", h)
	}

	if code, body := get(t, base+"/readyz"); code != 200 || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("readyz = %d: %s, want 200 degraded", code, body)
	}

	if code, metrics := get(t, base+"/metrics"); code != 200 {
		t.Fatalf("metrics = %d", code)
	} else {
		for _, want := range []string{"rr_alert_firing", "rr_alert_evals_total", "rr_online_ge_evals_total"} {
			if !strings.Contains(metrics, want) {
				t.Errorf("metrics missing %q", want)
			}
		}
		if strings.Contains(metrics, "rr_alert_firing 0") {
			t.Error("rr_alert_firing still zero while /debug/alerts reports firing")
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDriftAutoRollback: with -auto-rollback the firing regression
// alert triggers a rollback to the best-scoring retained version — the
// served model answers like the clean one again.
func TestDriftAutoRollback(t *testing.T) {
	base, shutdown := driftScenario(t, "-auto-rollback")

	waitFor(t, "auto-rollback", func() bool {
		h, code := getModelHealth(t, base)
		return code == 200 && h.AutoRollbacks >= 1
	})

	if got := fillAt(t, base); got < 4 || got > 8 {
		t.Fatalf("fill after rollback = %v, want ~6 (clean y=2x model restored)", got)
	}

	if code, metrics := get(t, base+"/metrics"); code != 200 {
		t.Fatalf("metrics = %d", code)
	} else if !strings.Contains(metrics, "rr_online_auto_rollbacks_total") ||
		strings.Contains(metrics, "rr_online_auto_rollbacks_total 0") {
		t.Error("rr_online_auto_rollbacks_total missing or zero after a rollback")
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
