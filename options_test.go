package ratiorules_test

import (
	"errors"
	"math"
	"testing"

	ratiorules "ratiorules"
)

// y ≈ 2x training data for the options-API tests. The small
// deterministic jitter keeps the residual bands non-degenerate so the
// outlier path has something to score against.
func optionRows() [][]float64 {
	rows := make([][]float64, 40)
	for i := range rows {
		x := float64(i + 1)
		rows[i] = []float64{x, 2*x + 0.2*math.Sin(float64(i))}
	}
	return rows
}

func TestMineWithOptions(t *testing.T) {
	rules, err := ratiorules.MineRows(optionRows(),
		ratiorules.Energy(0.99),
		ratiorules.MaxK(1),
		ratiorules.AttrNames("x", "y"))
	if err != nil {
		t.Fatalf("MineRows: %v", err)
	}
	if rules.K() != 1 {
		t.Fatalf("K = %d, want 1", rules.K())
	}
	if names := rules.AttrNames(); len(names) != 2 || names[0] != "x" {
		t.Fatalf("AttrNames = %v", names)
	}

	x, err := ratiorules.MatrixFromRows(optionRows())
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	fromMatrix, err := ratiorules.Mine(x, ratiorules.FixedK(1))
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if fromMatrix.K() != 1 {
		t.Fatalf("Mine FixedK: K = %d, want 1", fromMatrix.K())
	}

	stream, err := ratiorules.MineStream(
		ratiorules.NewMatrixSource(x), ratiorules.Energy(0.99))
	if err != nil {
		t.Fatalf("MineStream: %v", err)
	}
	if stream.K() == 0 {
		t.Fatal("MineStream: no rules")
	}

	// CoreMiner lowers the same Opt setters onto the Miner surface.
	miner, err := ratiorules.CoreMiner(ratiorules.FixedK(1),
		ratiorules.MinerOpts(ratiorules.WithJacobiSolver()))
	if err != nil {
		t.Fatalf("CoreMiner: %v", err)
	}
	viaMiner, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatalf("CoreMiner mine: %v", err)
	}
	if viaMiner.K() != 1 {
		t.Fatalf("CoreMiner FixedK: K = %d, want 1", viaMiner.K())
	}
}

func TestMineRejectsBadOptions(t *testing.T) {
	if _, err := ratiorules.MineRows(optionRows(), ratiorules.Energy(1.5)); err == nil {
		t.Fatal("Energy(1.5) accepted")
	}
	if _, err := ratiorules.MineRows(nil); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestFillWithOptions(t *testing.T) {
	rules, err := ratiorules.MineRows(optionRows())
	if err != nil {
		t.Fatalf("MineRows: %v", err)
	}

	// Explicit holes.
	got, err := ratiorules.Fill(rules, []float64{4, 0}, []int{1})
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if math.Abs(got[1]-8) > 0.5 {
		t.Fatalf("Fill([4, _]) = %v, want y near 8", got)
	}

	// Holes derived from markers, with an explicit solver.
	got, err = ratiorules.Fill(rules, []float64{4, ratiorules.Hole}, nil,
		ratiorules.Solver(ratiorules.SolveQR))
	if err != nil {
		t.Fatalf("Fill with markers: %v", err)
	}
	if math.Abs(got[1]-8) > 0.5 {
		t.Fatalf("Fill([4, Hole]) = %v, want y near 8", got)
	}

	if _, err := ratiorules.Fill(rules, []float64{4, 0}, []int{7}); !errors.Is(err, ratiorules.ErrBadHole) {
		t.Fatalf("bad hole error = %v, want ErrBadHole", err)
	}
}

func TestBatchFacade(t *testing.T) {
	rules, err := ratiorules.MineRows(optionRows())
	if err != nil {
		t.Fatalf("MineRows: %v", err)
	}

	rows := [][]float64{{3, 0}, {10, 0}, {1, 2, 3}}
	holes := [][]int{{1}, {1}, {1}}
	res := ratiorules.BatchFill(rules, rows, holes, ratiorules.Workers(2))
	if len(res) != 3 {
		t.Fatalf("BatchFill results = %d, want 3", len(res))
	}
	if res[0].Err != nil || math.Abs(res[0].Filled[1]-6) > 0.5 {
		t.Fatalf("row 0: %+v", res[0])
	}
	if res[1].Err != nil || math.Abs(res[1].Filled[1]-20) > 1 {
		t.Fatalf("row 1: %+v", res[1])
	}
	if !errors.Is(res[2].Err, ratiorules.ErrWidth) {
		t.Fatalf("row 2 err = %v, want ErrWidth", res[2].Err)
	}

	fc := ratiorules.BatchForecast(rules,
		[]ratiorules.ForecastJob{{Given: map[int]float64{0: 5}, Target: 1}})
	if fc[0].Err != nil || math.Abs(fc[0].Value-10) > 0.5 {
		t.Fatalf("BatchForecast: %+v", fc[0])
	}

	out := ratiorules.BatchOutliers(rules,
		[][]float64{{3, 6}, {3, 60}}, ratiorules.Sigma(3))
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("BatchOutliers errs: %v, %v", out[0].Err, out[1].Err)
	}
	if len(out[0].Outliers) != 0 {
		t.Fatalf("clean row flagged: %+v", out[0].Outliers)
	}
	if len(out[1].Outliers) == 0 {
		t.Fatal("corrupted row not flagged")
	}
}

func TestCleanFillsHoles(t *testing.T) {
	rules, err := ratiorules.MineRows(optionRows())
	if err != nil {
		t.Fatalf("MineRows: %v", err)
	}
	x, err := ratiorules.MatrixFromRows([][]float64{
		{3, ratiorules.Hole},
		{5, 10},
		{ratiorules.Hole, 14},
	})
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	n, err := ratiorules.Clean(rules, x)
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	if n != 2 {
		t.Fatalf("Clean filled %d cells, want 2", n)
	}
	if got := x.At(0, 1); math.Abs(got-6) > 0.5 {
		t.Fatalf("x[0][1] = %v, want near 6", got)
	}
	if got := x.At(2, 0); math.Abs(got-7) > 0.5 {
		t.Fatalf("x[2][0] = %v, want near 7", got)
	}
	if got := x.At(1, 0); got != 5 {
		t.Fatalf("untouched cell changed: %v", got)
	}
}
