# Multi-stage build for the Ratio Rules service.
#
# Stage 1 compiles rrserve (and the rrbench load generator, handy for
# smoke tests) as static binaries; stage 2 ships them on distroless
# static — no shell, no package manager, runs as nonroot. The service
# owns its own HTTP probes (/healthz, /readyz) so no curl is needed in
# the image; compose healthchecks use rrserve itself via the go
# net/http probe below.
#
#   docker build -t ratiorules .
#   docker run -p 8080:8080 -v rr-data:/data ratiorules \
#       -addr :8080 -data-dir /data
#
# See docs/runbook.md for the full deployment story (tenants file,
# follower replicas, cluster workers, overload triage).

FROM golang:1.22 AS build
WORKDIR /src
# go.mod first so the (empty — stdlib only) module graph caches.
COPY go.mod ./
RUN go mod download
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/rrserve ./cmd/rrserve && \
    CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/rrbench ./cmd/rrbench && \
    CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/healthprobe ./cmd/healthprobe

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/rrserve /rrserve
COPY --from=build /out/rrbench /rrbench
COPY --from=build /out/healthprobe /healthprobe
# Model store volume; matches the compose files and the runbook.
VOLUME ["/data"]
EXPOSE 8080
USER nonroot
ENTRYPOINT ["/rrserve"]
CMD ["-addr", ":8080", "-data-dir", "/data"]
